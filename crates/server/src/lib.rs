//! # kg-server — the prototype group key server
//!
//! The trusted entity of the paper: it owns the key tree, performs group
//! access control, processes join/leave requests, constructs rekey
//! messages under the configured strategy, authenticates them (digest,
//! per-message signature, or the Section 4 batch signature), and records
//! the statistics the evaluation tables are built from.
//!
//! [`GroupKeyServer`] is the network-free core — the benchmark harness
//! drives it directly, timing exactly what the paper timed (request
//! parsing, tree update, key generation, encryption, digest/signature,
//! message encoding). [`net::NetServer`] wraps it for operation over the
//! simulated network in `kg-net`, resolving each rekey message's
//! [`Recipients`](kg_core::rekey::Recipients) to concrete endpoints.
//!
//! ```
//! use kg_server::{GroupKeyServer, ServerConfig, AccessControl};
//! use kg_core::ids::UserId;
//!
//! // Paper defaults: degree-4 tree, group-oriented rekeying, DES-CBC.
//! let mut server = GroupKeyServer::new(ServerConfig::default(), AccessControl::AllowAll);
//! for i in 0..20 {
//!     server.handle_join(UserId(i)).unwrap();
//! }
//! let before = server.tree().group_key().0;
//! let op = server.handle_leave(UserId(7)).unwrap();
//! assert_eq!(op.packets.len(), 1, "group-oriented leave: one multicast");
//! assert!(server.tree().group_key().0.version > before.version);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod config;
pub mod net;
pub mod stats;

pub use acl::{AccessControl, AclError};
pub use config::{AuthPolicy, ConfigError, ParallelConfig, RekeyPolicy, ServerConfig};
pub use stats::{Aggregate, OpRecord, ServerStats};

use kg_batch::BatchScheduler;
use kg_core::derive::{links_from_path, DerivedLink, DERIVATION_CODE_LEN};
use kg_core::ids::{KeyLabel, UserId};
use kg_core::merkle;
use kg_core::rekey::{Recipients, RekeyMessage, Strategy};
use kg_core::serial;
use kg_core::tree::{KeyTree, TreeError};
use kg_crypto::drbg::HmacDrbg;
use kg_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use kg_crypto::{KeySource, SymmetricKey};
use kg_obs::{Counter, Obs, ObsEvent};
use kg_par::{ParRekeyer, WorkerPool};
use kg_persist::{
    AclSnapshot, PersistConfig, PersistError, Persistence, SchedulerSnapshot, Snapshot, StatRecord,
    WalOp,
};
use kg_wire::{AuthTag, BatchRekeyPacket, DerivedRekeyPacket, OpKind, RekeyPacket};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

/// Why a request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// Access control denied the join.
    JoinDenied(UserId),
    /// Tree-level membership error (duplicate join / unknown leaver).
    Tree(TreeError),
    /// A batched-mode call (`enqueue_*`) on a server configured for
    /// immediate rekeying.
    NotBatched,
    /// The write-ahead log could not be appended or the snapshot could
    /// not be installed. The op itself was applied in memory, but its
    /// durability is not guaranteed: a persistent server that returns
    /// this should be discarded and re-created via recovery.
    Persist(String),
    /// An internal invariant was violated while handling the request;
    /// surfaced as an error instead of a panic so one bad request cannot
    /// take the server down.
    Internal(&'static str),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::JoinDenied(u) => write!(f, "join denied for {u}"),
            RequestError::Tree(e) => write!(f, "{e}"),
            RequestError::NotBatched => {
                write!(f, "server is configured for immediate rekeying")
            }
            RequestError::Persist(detail) => write!(f, "persistence failure: {detail}"),
            RequestError::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<TreeError> for RequestError {
    fn from(e: TreeError) -> Self {
        RequestError::Tree(e)
    }
}

/// Why crash recovery failed.
#[derive(Debug)]
pub enum RecoverError {
    /// The store could not be read (I/O failure or corrupt file).
    Persist(PersistError),
    /// The WAL was written by a server with a different DRBG seed, so
    /// replay cannot regenerate the same keys.
    SeedMismatch {
        /// Seed recorded in the WAL header.
        logged: u64,
        /// Seed in the configuration passed to recovery.
        configured: u64,
    },
    /// The snapshotted key tree failed to decode.
    Tree(serial::SerialError),
    /// Replaying a logged op through the server failed — the log does not
    /// match the state it was supposedly produced from.
    Replay(RequestError),
    /// The recovered tree's root-key digest does not match the digest the
    /// pre-crash server recorded, so recovery did not converge.
    DigestMismatch,
    /// The snapshot is internally inconsistent or does not match the
    /// configuration passed to recovery.
    Corrupt(&'static str),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Persist(e) => write!(f, "{e}"),
            RecoverError::SeedMismatch { logged, configured } => write!(
                f,
                "wal was written under seed {logged}, recovery configured with {configured}"
            ),
            RecoverError::Tree(e) => write!(f, "snapshot tree: {e}"),
            RecoverError::Replay(e) => write!(f, "wal replay: {e}"),
            RecoverError::DigestMismatch => {
                write!(f, "recovered root-key digest does not match the log")
            }
            RecoverError::Corrupt(what) => write!(f, "recovered state inconsistent: {what}"),
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Persist(e) => Some(e),
            RecoverError::Tree(e) => Some(e),
            RecoverError::Replay(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for RecoverError {
    fn from(e: PersistError) -> Self {
        RecoverError::Persist(e)
    }
}

/// `OpKind` as the stable byte used in snapshots (same values as the
/// wire encoding).
fn op_kind_tag(kind: OpKind) -> u8 {
    match kind {
        OpKind::Join => 0,
        OpKind::Leave => 1,
        OpKind::Batch => 2,
        OpKind::Refresh => 3,
    }
}

fn op_kind_from_tag(tag: u8) -> Option<OpKind> {
    match tag {
        0 => Some(OpKind::Join),
        1 => Some(OpKind::Leave),
        2 => Some(OpKind::Batch),
        3 => Some(OpKind::Refresh),
        _ => None,
    }
}

/// Result of processing one join or leave.
#[derive(Debug, Clone)]
pub struct ProcessedOp {
    /// Sequence number assigned to this operation.
    pub seq: u64,
    /// Fully authenticated rekey packets, ready to encode and send.
    /// Empty under `strategy = derived` (see [`ProcessedOp::derived`]).
    pub packets: Vec<RekeyPacket>,
    /// Derived-mode packets: at most one [`DerivedRekeyPacket`] carrying
    /// the interval's derivation code, the changed-key worklist, and any
    /// shipped bundles (the joiner unicast; whole leave payloads). Empty
    /// under the shipped strategies.
    pub derived: Vec<DerivedRekeyPacket>,
    /// Encoded form of each packet (computed inside the timed section, as
    /// the paper's processing time includes message construction). Aligns
    /// with whichever of `packets`/`derived` is populated.
    pub encoded: Vec<Vec<u8>>,
    /// For joins: the individual key handed to the new member by the
    /// authentication exchange, plus its leaf label and the path labels
    /// (root-first) for the join-ack.
    pub join_grant: Option<JoinGrant>,
}

impl ProcessedOp {
    /// Every frame to send, paired with its recipients. Shipped packets
    /// go to their message's recipients; a derived packet is one group
    /// multicast (its sealed bundles are only decryptable by their
    /// intended holders, so widening delivery leaks nothing).
    pub fn frames(&self) -> Vec<(Recipients, &[u8])> {
        if self.derived.is_empty() {
            self.packets
                .iter()
                .zip(&self.encoded)
                .map(|(p, bytes)| (p.message.recipients.clone(), bytes.as_slice()))
                .collect()
        } else {
            self.encoded.iter().map(|bytes| (Recipients::Group, bytes.as_slice())).collect()
        }
    }
}

/// The data a joining member receives out-of-band (via the authenticated
/// admission exchange).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinGrant {
    /// The admitted user.
    pub user: UserId,
    /// Its individual key.
    pub individual_key: SymmetricKey,
    /// Label of its individual-key leaf.
    pub leaf_label: KeyLabel,
    /// Labels of the path keys, root-first (the join-ack payload).
    pub path_labels: Vec<KeyLabel>,
}

/// Result of flushing one batched rekey interval.
#[derive(Debug, Clone)]
pub struct ProcessedBatch {
    /// Interval sequence number carried by every packet.
    pub interval: u64,
    /// Fully authenticated batch rekey packets, ready to send. Empty
    /// under `strategy = derived` (see [`ProcessedBatch::derived`]).
    pub packets: Vec<BatchRekeyPacket>,
    /// Derived-mode packets: at most one [`DerivedRekeyPacket`] for the
    /// interval (code + worklist + joiner unicasts for a pure-join
    /// interval; shipped bundles with an empty worklist when the
    /// interval contained leaves). Empty under the shipped strategies.
    pub derived: Vec<DerivedRekeyPacket>,
    /// Encoded form of each packet. Aligns with whichever of
    /// `packets`/`derived` is populated.
    pub encoded: Vec<Vec<u8>>,
    /// One grant per user admitted this interval (the out-of-band
    /// authentication-exchange payload, as for immediate joins).
    pub grants: Vec<JoinGrant>,
    /// Users removed this interval (excludes leave-then-rejoin pairs).
    pub departed: Vec<UserId>,
}

impl ProcessedBatch {
    /// Every frame to send, paired with its recipients (see
    /// [`ProcessedOp::frames`]).
    pub fn frames(&self) -> Vec<(Recipients, &[u8])> {
        if self.derived.is_empty() {
            self.packets
                .iter()
                .zip(&self.encoded)
                .map(|(p, bytes)| (p.message.recipients.clone(), bytes.as_slice()))
                .collect()
        } else {
            self.encoded.iter().map(|bytes| (Recipients::Group, bytes.as_slice())).collect()
        }
    }
}

/// The prototype group key server.
pub struct GroupKeyServer {
    config: ServerConfig,
    acl: AccessControl,
    tree: KeyTree,
    keygen: HmacDrbg,
    ivs: HmacDrbg,
    rsa: Option<RsaKeyPair>,
    seq: u64,
    stats: ServerStats,
    /// Present iff `config.rekey` is [`RekeyPolicy::Batched`].
    scheduler: Option<BatchScheduler>,
    /// Durability store; `None` for a purely in-memory server.
    persist: Option<Persistence>,
    /// Observability handle; disabled (free) unless attached.
    obs: Obs,
    /// Counter handles resolved once at [`Self::attach_obs`] so the
    /// request path never touches the registry lock.
    metrics: ServerMetrics,
    /// Per-op rekey-cost ledger rows, same lifecycle as `metrics`.
    ledger: Ledger,
    /// Worker pool for parallel rekey construction; present iff
    /// `config.parallel.workers >= 2`. Output is byte-identical with or
    /// without it (see `kg-par`), so the pool never appears in
    /// snapshots and recovery may use a different worker count.
    pool: Option<WorkerPool>,
}

/// Pre-resolved counter handles for the per-request hot path. Detached
/// (no-op) until an enabled handle is attached.
#[derive(Debug, Default)]
struct ServerMetrics {
    req_join: Counter,
    req_leave: Counter,
    req_refresh: Counter,
    req_batch: Counter,
    encryptions: Counter,
    signatures: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
}

impl ServerMetrics {
    fn resolve(obs: &Obs) -> Self {
        ServerMetrics {
            req_join: obs.counter_with("kg_requests_total", "kind", "join"),
            req_leave: obs.counter_with("kg_requests_total", "kind", "leave"),
            req_refresh: obs.counter_with("kg_requests_total", "kind", "refresh"),
            req_batch: obs.counter_with("kg_requests_total", "kind", "batch"),
            encryptions: obs.counter("kg_encryptions_total"),
            signatures: obs.counter("kg_signatures_total"),
            cache_hits: obs.counter_with("kg_par_cache_total", "result", "hit"),
            cache_misses: obs.counter_with("kg_par_cache_total", "result", "miss"),
        }
    }
}

/// One row of the per-op rekey-cost ledger: every counter carries the
/// label `op="<strategy>:<kind>"`, so aggregating across shards keeps
/// the cost breakdown the paper's Tables 4/5 report (encryptions and
/// rekey messages per request, by strategy and operation). Detached
/// (no-op) until resolved against an enabled [`Obs`].
#[derive(Debug, Default)]
struct LedgerCell {
    ops: Counter,
    encryptions: Counter,
    messages: Counter,
    bytes: Counter,
    nodes_touched: Counter,
    cache_hits: Counter,
}

impl LedgerCell {
    fn resolve(obs: &Obs, strategy: &str, kind: &str) -> Self {
        let op = format!("{strategy}:{kind}");
        LedgerCell {
            ops: obs.counter_with("kg_ledger_ops_total", "op", &op),
            encryptions: obs.counter_with("kg_ledger_encryptions_total", "op", &op),
            messages: obs.counter_with("kg_ledger_messages_total", "op", &op),
            bytes: obs.counter_with("kg_ledger_bytes_total", "op", &op),
            nodes_touched: obs.counter_with("kg_ledger_nodes_touched_total", "op", &op),
            cache_hits: obs.counter_with("kg_ledger_cache_hits_total", "op", &op),
        }
    }

    /// Account one completed operation. `bytes` is the total encoded
    /// wire size of its rekey packets; `nodes` the fresh keys the op
    /// generated (= key-tree nodes whose keys changed).
    fn record(&self, encryptions: u64, messages: u64, bytes: u64, nodes: u64, cache_hits: u64) {
        self.ops.inc();
        self.encryptions.add(encryptions);
        self.messages.add(messages);
        self.bytes.add(bytes);
        self.nodes_touched.add(nodes);
        self.cache_hits.add(cache_hits);
    }
}

/// The four ledger rows a server can write (its strategy is fixed at
/// construction, so one row per op kind suffices).
#[derive(Debug, Default)]
struct Ledger {
    join: LedgerCell,
    leave: LedgerCell,
    refresh: LedgerCell,
    batch: LedgerCell,
}

impl Ledger {
    fn resolve(obs: &Obs, strategy: &str) -> Self {
        Ledger {
            join: LedgerCell::resolve(obs, strategy, "join"),
            leave: LedgerCell::resolve(obs, strategy, "leave"),
            refresh: LedgerCell::resolve(obs, strategy, "refresh"),
            batch: LedgerCell::resolve(obs, strategy, "batch"),
        }
    }
}

impl GroupKeyServer {
    /// Create a server. Generates an RSA keypair when the auth policy
    /// requires one (key generation happens here, once — not in the timed
    /// path).
    pub fn new(config: ServerConfig, acl: AccessControl) -> Self {
        let mut keygen = HmacDrbg::from_seed(config.seed ^ 0x6b67_5f6b_6579_7321);
        let ivs = HmacDrbg::from_seed(config.seed ^ 0x6976_5f73_6565_6421);
        let rsa = config.auth.needs_signature_key().then(|| {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7273_615f_6b65_7921);
            RsaKeyPair::generate(config.rsa_bits, &mut rng).expect("RSA key generation")
        });
        let tree = KeyTree::new(config.degree, config.key_len(), &mut keygen);
        let scheduler = config.rekey.batch_policy().map(|p| BatchScheduler::new(p, 0));
        let stats = Self::stats_sink(&config);
        let pool = Self::make_pool(&config);
        GroupKeyServer {
            config,
            acl,
            tree,
            keygen,
            ivs,
            rsa,
            seq: 0,
            stats,
            scheduler,
            persist: None,
            obs: Obs::disabled(),
            metrics: ServerMetrics::default(),
            ledger: Ledger::default(),
            pool,
        }
    }

    /// A stats sink honouring the configured record cap.
    fn stats_sink(config: &ServerConfig) -> ServerStats {
        match config.stats_record_cap {
            Some(cap) => ServerStats::with_record_cap(cap),
            None => ServerStats::default(),
        }
    }

    /// Spawn the rekey-construction worker pool when configured. The
    /// worker count is clamped to the hardware's available parallelism
    /// unless [`ParallelConfig::clamp_to_hardware`] is disabled, so a
    /// spec asking for more threads than the host has cores falls back
    /// gracefully (down to the sequential path on a single-core host).
    fn make_pool(config: &ServerConfig) -> Option<WorkerPool> {
        config.parallel.wants_pool().then(|| WorkerPool::new(config.parallel.effective_workers()))
    }

    /// Attach an observability handle. Spans, counters, and timeline
    /// events from the request handlers flow to it, and it is propagated
    /// to the batch scheduler and the durability store (queue-depth
    /// gauge, fsync histogram, WAL/snapshot events). Attach once, right
    /// after construction; a disabled handle detaches everything.
    pub fn attach_obs(&mut self, obs: Obs) {
        if let Some(s) = self.scheduler.as_mut() {
            s.attach_obs(obs.clone());
        }
        if let Some(p) = self.persist.as_mut() {
            p.attach_obs(obs.clone());
        }
        if let Some(pool) = self.pool.as_ref() {
            pool.attach_obs(&obs);
        }
        self.metrics = ServerMetrics::resolve(&obs);
        self.ledger = Ledger::resolve(&obs, self.config.strategy.name());
        self.obs = obs;
    }

    /// The attached observability handle (disabled by default).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Create a server backed by a fresh durability store at `dir` (which
    /// must not already contain one). Every mutating op is written to the
    /// write-ahead log before the call returns; snapshots are taken on
    /// the thresholds in `persist_config`.
    pub fn with_persistence(
        config: ServerConfig,
        acl: AccessControl,
        dir: impl Into<PathBuf>,
        persist_config: PersistConfig,
    ) -> Result<Self, RecoverError> {
        let mut server = Self::new(config, acl);
        let persist = Persistence::create(dir, server.config.seed, persist_config)?;
        server.persist = Some(persist);
        Ok(server)
    }

    /// Rebuild a server from the store at `dir`: load the latest
    /// snapshot, replay the WAL tail through the normal request handlers
    /// (a torn final record is discarded), verify the recovered tree
    /// against the last logged root-key digest, and reopen the log for
    /// append.
    ///
    /// `config` and `acl` must be the ones the original server was
    /// created with; the seed is cross-checked against the WAL header,
    /// and once a snapshot exists its ACL takes precedence over the
    /// argument. Recovery is deterministic: the snapshot carries both
    /// DRBG working states, so replayed ops regenerate byte-identical
    /// keys.
    pub fn recover(
        config: ServerConfig,
        acl: AccessControl,
        dir: impl Into<PathBuf>,
        persist_config: PersistConfig,
    ) -> Result<Self, RecoverError> {
        Self::recover_observed(config, acl, dir, persist_config, Obs::disabled())
    }

    /// [`recover`](Self::recover) with an observability handle attached
    /// from the start: the handle sees a `Recovered` timeline event (and
    /// replay counters), and stays attached for subsequent operation.
    /// Replay itself runs unobserved — replayed ops are reconstructions,
    /// not new requests, so they must not inflate the counters that
    /// reconcile against the WAL.
    pub fn recover_observed(
        config: ServerConfig,
        acl: AccessControl,
        dir: impl Into<PathBuf>,
        persist_config: PersistConfig,
        obs: Obs,
    ) -> Result<Self, RecoverError> {
        let (persist, recovered) = Persistence::recover(dir, persist_config)?;
        if recovered.seed != config.seed {
            return Err(RecoverError::SeedMismatch {
                logged: recovered.seed,
                configured: config.seed,
            });
        }
        let mut server = match &recovered.snapshot {
            None => Self::new(config, acl),
            Some(snap) => Self::from_snapshot(config, snap)?,
        };
        for (op, _) in &recovered.ops {
            server.replay(op).map_err(RecoverError::Replay)?;
        }
        // Prove convergence: the tree must hash to the digest recorded
        // with the last surviving record (or in the snapshot, if the new
        // epoch's log was still empty).
        let reached = serial::root_digest(&server.tree);
        let expected = recovered
            .ops
            .last()
            .map(|(_, d)| *d)
            .or(recovered.snapshot.as_ref().map(|s| s.root_digest));
        if let Some(expected) = expected {
            if reached != expected {
                return Err(RecoverError::DigestMismatch);
            }
        }
        let epoch = persist.epoch();
        let records_replayed = recovered.ops.len() as u64;
        server.persist = Some(persist);
        server.attach_obs(obs);
        server.obs.counter("kg_recoveries_total").inc();
        server.obs.counter("kg_replayed_records_total").add(records_replayed);
        server.obs.event(ObsEvent::Recovered { epoch, records_replayed });
        Ok(server)
    }

    /// Rebuild in-memory state from a snapshot (no log replay yet).
    fn from_snapshot(config: ServerConfig, snap: &Snapshot) -> Result<Self, RecoverError> {
        if snap.seed != config.seed {
            return Err(RecoverError::SeedMismatch { logged: snap.seed, configured: config.seed });
        }
        let tree = serial::decode_tree(&snap.tree).map_err(RecoverError::Tree)?;
        if tree.degree() != config.degree || tree.key_len() != config.key_len() {
            return Err(RecoverError::Corrupt("snapshot tree does not match config"));
        }
        let keygen = HmacDrbg::from_state(snap.keygen.0, snap.keygen.1);
        let ivs = HmacDrbg::from_state(snap.ivs.0, snap.ivs.1);
        // The RSA keypair is derived from the seed independently of the
        // DRBG streams, so it is regenerated rather than persisted.
        let rsa = config.auth.needs_signature_key().then(|| {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7273_615f_6b65_7921);
            RsaKeyPair::generate(config.rsa_bits, &mut rng).expect("RSA key generation")
        });
        let acl = match &snap.acl {
            AclSnapshot::AllowAll => AccessControl::AllowAll,
            AclSnapshot::AllowList(users) => AccessControl::allow_list(users.iter().copied()),
        };
        let records = snap
            .stats
            .iter()
            .map(|r| {
                Ok(OpRecord {
                    kind: op_kind_from_tag(r.kind)
                        .ok_or(RecoverError::Corrupt("snapshot stats op kind"))?,
                    requests: r.requests,
                    msg_sizes: r.msg_sizes.clone(),
                    proc_ns: r.proc_ns,
                    encryptions: r.encryptions,
                    signatures: r.signatures,
                })
            })
            .collect::<Result<Vec<_>, RecoverError>>()?;
        let mut stats = Self::stats_sink(&config);
        for r in records {
            stats.push(r);
        }
        let scheduler = match (&snap.scheduler, config.rekey.batch_policy()) {
            (None, None) => None,
            (Some(s), Some(policy)) => Some(BatchScheduler::restore(
                policy,
                s.joins.iter().map(|(u, k)| (*u, SymmetricKey::from_bytes(k))).collect(),
                s.leaves.clone(),
                s.last_flush_ms,
                s.intervals_flushed,
            )),
            _ => return Err(RecoverError::Corrupt("snapshot batching mode does not match config")),
        };
        let pool = Self::make_pool(&config);
        Ok(GroupKeyServer {
            config,
            acl,
            tree,
            keygen,
            ivs,
            rsa,
            seq: snap.seq,
            stats,
            scheduler,
            persist: None,
            obs: Obs::disabled(),
            metrics: ServerMetrics::default(),
            ledger: Ledger::default(),
            pool,
        })
    }

    /// Re-apply one logged op through the normal handlers. Persistence is
    /// detached during recovery, so nothing is re-logged.
    fn replay(&mut self, op: &WalOp) -> Result<(), RequestError> {
        // Derived and shipped ops consume the key DRBG differently, so a
        // WAL written under one strategy class replayed under the other
        // would silently regenerate a different key stream. The distinct
        // record tags turn that configuration flip into a hard error.
        let derived = self.config.strategy == Strategy::Derived;
        match op {
            WalOp::Join(_) | WalOp::Refresh if derived => Err(RequestError::Internal(
                "wal records a shipped-strategy op but the server strategy is derived",
            )),
            WalOp::DerivedJoin(_) | WalOp::DerivedRefresh if !derived => {
                Err(RequestError::Internal(
                    "wal records a derived op but the server strategy is not derived",
                ))
            }
            WalOp::Join(u) | WalOp::DerivedJoin(u) => self.handle_join(*u).map(drop),
            WalOp::Leave(u) => self.handle_leave(*u).map(drop),
            WalOp::EnqueueJoin(u) => self.enqueue_join(*u),
            WalOp::EnqueueLeave(u) => self.enqueue_leave(*u),
            WalOp::Flush { now_ms } => self.flush(*now_ms).map(drop),
            WalOp::Refresh | WalOp::DerivedRefresh => self.refresh_group_key().map(drop),
        }
    }

    /// Capture the full server state as a snapshot.
    fn build_snapshot(&self) -> Snapshot {
        Snapshot {
            seed: self.config.seed,
            seq: self.seq,
            keygen: self.keygen.state(),
            ivs: self.ivs.state(),
            tree: serial::encode_tree(&self.tree),
            acl: match &self.acl {
                AccessControl::AllowAll => AclSnapshot::AllowAll,
                AccessControl::AllowList(set) => {
                    AclSnapshot::AllowList(set.iter().copied().collect())
                }
            },
            stats: self
                .stats
                .records()
                .iter()
                .map(|r| StatRecord {
                    kind: op_kind_tag(r.kind),
                    requests: r.requests,
                    msg_sizes: r.msg_sizes.clone(),
                    proc_ns: r.proc_ns,
                    encryptions: r.encryptions,
                    signatures: r.signatures,
                })
                .collect(),
            scheduler: self.scheduler.as_ref().map(|s| SchedulerSnapshot {
                joins: s.pending_joins().iter().map(|(u, k)| (*u, k.material().to_vec())).collect(),
                leaves: s.pending_leaves().to_vec(),
                last_flush_ms: s.last_flush_ms(),
                intervals_flushed: s.intervals_flushed(),
            }),
            root_digest: serial::root_digest(&self.tree),
        }
    }

    /// Append `op` to the WAL (no-op for in-memory servers), then take a
    /// snapshot if the store's thresholds have been crossed. Called after
    /// the op mutated the server, so the record's digest describes
    /// post-op state.
    fn log_op(&mut self, op: WalOp) -> Result<(), RequestError> {
        let Some(mut persist) = self.persist.take() else { return Ok(()) };
        let _span = self.obs.span("wal");
        let digest = serial::root_digest(&self.tree);
        let mut result = persist.append(&op, &digest);
        if result.is_ok() && persist.should_snapshot() {
            let snap = self.build_snapshot();
            result = persist.install_snapshot(&snap);
        }
        self.persist = Some(persist);
        result.map_err(|e| RequestError::Persist(e.to_string()))
    }

    /// Whether a durability store is attached.
    pub fn is_persistent(&self) -> bool {
        self.persist.is_some()
    }

    /// Read access to the durability store.
    pub fn persistence(&self) -> Option<&Persistence> {
        self.persist.as_ref()
    }

    /// Flush the WAL to stable storage regardless of the fsync policy
    /// (clean shutdown).
    pub fn sync_persistence(&mut self) -> Result<(), RequestError> {
        if let Some(p) = self.persist.as_mut() {
            p.sync().map_err(|e| RequestError::Persist(e.to_string()))?;
        }
        Ok(())
    }

    /// Take a snapshot now, regardless of thresholds (no-op for in-memory
    /// servers).
    pub fn force_snapshot(&mut self) -> Result<(), RequestError> {
        let Some(mut persist) = self.persist.take() else { return Ok(()) };
        let snap = self.build_snapshot();
        let result = persist.install_snapshot(&snap);
        self.persist = Some(persist);
        result.map_err(|e| RequestError::Persist(e.to_string()))
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The server's signature-verification key, for distribution to
    /// clients. `None` when the auth policy doesn't sign.
    pub fn public_key(&self) -> Option<&RsaPublicKey> {
        self.rsa.as_ref().map(|kp| kp.public())
    }

    /// Current group size.
    pub fn group_size(&self) -> usize {
        self.tree.user_count()
    }

    /// Whether `u` is a member.
    pub fn is_member(&self, u: UserId) -> bool {
        self.tree.is_member(u)
    }

    /// Read access to the key tree (recipient resolution, tests).
    pub fn tree(&self) -> &KeyTree {
        &self.tree
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Clear statistics (after initial population, as in §5).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Switch the authentication policy at runtime.
    ///
    /// The experiment harness populates the initial group with
    /// authentication off (the paper excludes the n initial joins from
    /// every measurement) and then enables the configured policy for the
    /// measured phase.
    ///
    /// # Panics
    /// Panics when switching to a signing policy on a server constructed
    /// without one (no RSA keypair was generated).
    pub fn set_auth(&mut self, auth: AuthPolicy) {
        assert!(
            !auth.needs_signature_key() || self.rsa.is_some(),
            "server was built without a signature keypair"
        );
        self.config.auth = auth;
    }

    /// Process a join request.
    ///
    /// The authentication exchange (modelled by generating the individual
    /// key) happens *before* the timer starts: "the processing time for a
    /// join request does not include any time used to authenticate the
    /// requesting user" (§5).
    pub fn handle_join(&mut self, user: UserId) -> Result<ProcessedOp, RequestError> {
        if !self.acl.permits(user) {
            return Err(RequestError::JoinDenied(user));
        }
        if self.tree.is_member(user) {
            return Err(RequestError::Tree(TreeError::AlreadyMember(user)));
        }
        let individual_key = self.keygen.generate_key(self.config.key_len());
        if self.config.strategy == Strategy::Derived {
            return self.handle_join_derived(user, individual_key);
        }

        let _op_span = self.obs.span("op.join");
        let start = Instant::now();
        let event = {
            let _s = self.obs.span("tree");
            self.tree.join(user, individual_key.clone(), &mut self.keygen)?
        };
        let out = {
            let _s = self.obs.span("encrypt");
            let mut rekeyer =
                ParRekeyer::new(self.config.cipher, &mut self.ivs, self.pool.as_ref());
            rekeyer.join(&event, self.config.strategy)
        };
        let seq = self.next_seq();
        let (packets, encoded, signatures) =
            self.authenticate_and_encode(seq, OpKind::Join, out.messages);
        let proc_ns = start.elapsed().as_nanos() as u64;
        self.metrics.req_join.inc();
        self.metrics.encryptions.add(out.ops.key_encryptions);
        self.metrics.signatures.add(signatures);
        self.metrics.cache_hits.add(out.ops.cache_hits);
        self.metrics.cache_misses.add(out.ops.cache_misses);
        self.ledger.join.record(
            out.ops.key_encryptions,
            encoded.len() as u64,
            encoded.iter().map(|e| e.len() as u64).sum(),
            out.ops.keys_generated,
            out.ops.cache_hits,
        );
        self.obs.event(ObsEvent::Join { user: user.0 });

        self.stats.push(OpRecord {
            kind: OpKind::Join,
            requests: 1,
            msg_sizes: encoded.iter().map(|e| e.len() as u32).collect(),
            proc_ns,
            encryptions: out.ops.key_encryptions,
            signatures,
        });
        self.log_op(WalOp::Join(user))?;
        Ok(ProcessedOp {
            seq,
            packets,
            derived: Vec::new(),
            encoded,
            join_grant: Some(JoinGrant {
                user,
                individual_key,
                leaf_label: event.leaf_label,
                path_labels: event.path.iter().map(|p| p.label).collect(),
            }),
        })
    }

    /// [`Self::handle_join`] under `strategy = derived`: the server draws
    /// a derivation code, rotates the joiner's path by *deriving* each
    /// changed key from its predecessor (`HMAC(old, code ‖ ref)`), and
    /// publishes one [`DerivedRekeyPacket`] — the code, the changed-key
    /// worklist, and the joiner's sealed unicast. Current members
    /// recompute the new keys locally; the only ciphertext the server
    /// seals is the joiner's bundle, so the per-join sealing cost is O(1)
    /// in the group size (the paper's O(log n) encryption work moves to
    /// the members as one HMAC per held-and-changed key).
    fn handle_join_derived(
        &mut self,
        user: UserId,
        individual_key: SymmetricKey,
    ) -> Result<ProcessedOp, RequestError> {
        let _op_span = self.obs.span("op.join");
        let start = Instant::now();
        // Drawn after the individual key, so replay under the same seed
        // reproduces the identical code stream.
        let code = self.keygen.generate(DERIVATION_CODE_LEN);
        let event = {
            let _s = self.obs.span("tree");
            self.tree.join_derived(user, individual_key.clone(), &mut self.keygen, &code)?
        };
        let out = {
            let _s = self.obs.span("encrypt");
            let mut rekeyer =
                ParRekeyer::new(self.config.cipher, &mut self.ivs, self.pool.as_ref());
            rekeyer.join_derived(&event)
        };
        let changed = links_from_path(&event.path);
        let seq = self.next_seq();
        let (derived, encoded, signatures) =
            self.authenticate_and_encode_derived(seq, OpKind::Join, code, changed, out.messages);
        let proc_ns = start.elapsed().as_nanos() as u64;
        self.metrics.req_join.inc();
        self.metrics.encryptions.add(out.ops.key_encryptions);
        self.metrics.signatures.add(signatures);
        self.metrics.cache_hits.add(out.ops.cache_hits);
        self.metrics.cache_misses.add(out.ops.cache_misses);
        self.ledger.join.record(
            out.ops.key_encryptions,
            encoded.len() as u64,
            encoded.iter().map(|e| e.len() as u64).sum(),
            out.ops.keys_generated,
            out.ops.cache_hits,
        );
        self.obs.event(ObsEvent::Join { user: user.0 });

        self.stats.push(OpRecord {
            kind: OpKind::Join,
            requests: 1,
            msg_sizes: encoded.iter().map(|e| e.len() as u32).collect(),
            proc_ns,
            encryptions: out.ops.key_encryptions,
            signatures,
        });
        self.log_op(WalOp::DerivedJoin(user))?;
        Ok(ProcessedOp {
            seq,
            packets: Vec::new(),
            derived,
            encoded,
            join_grant: Some(JoinGrant {
                user,
                individual_key,
                leaf_label: event.leaf_label,
                path_labels: event.path.iter().map(|p| p.label).collect(),
            }),
        })
    }

    /// Process a leave request.
    pub fn handle_leave(&mut self, user: UserId) -> Result<ProcessedOp, RequestError> {
        if !self.tree.is_member(user) {
            return Err(RequestError::Tree(TreeError::NotAMember(user)));
        }
        let _op_span = self.obs.span("op.leave");
        let start = Instant::now();
        let event = {
            let _s = self.obs.span("tree");
            self.tree.leave(user, &mut self.keygen)?
        };
        let out = {
            let _s = self.obs.span("encrypt");
            let mut rekeyer =
                ParRekeyer::new(self.config.cipher, &mut self.ivs, self.pool.as_ref());
            // Forward secrecy forbids deriving post-leave keys from
            // pre-leave ones, so derived mode ships a leave's fresh keys
            // exactly like its shipped fallback — wrapped in a derived
            // packet (empty code/worklist) so clients see one format and
            // one monotonic interval counter.
            rekeyer.leave(&event, self.config.strategy.shipped_fallback())
        };
        let seq = self.next_seq();
        let (packets, derived, encoded, signatures) = if self.config.strategy == Strategy::Derived {
            let (derived, encoded, signatures) = self.authenticate_and_encode_derived(
                seq,
                OpKind::Leave,
                Vec::new(),
                Vec::new(),
                out.messages,
            );
            (Vec::new(), derived, encoded, signatures)
        } else {
            let (packets, encoded, signatures) =
                self.authenticate_and_encode(seq, OpKind::Leave, out.messages);
            (packets, Vec::new(), encoded, signatures)
        };
        let proc_ns = start.elapsed().as_nanos() as u64;
        self.metrics.req_leave.inc();
        self.metrics.encryptions.add(out.ops.key_encryptions);
        self.metrics.signatures.add(signatures);
        self.metrics.cache_hits.add(out.ops.cache_hits);
        self.metrics.cache_misses.add(out.ops.cache_misses);
        self.ledger.leave.record(
            out.ops.key_encryptions,
            encoded.len() as u64,
            encoded.iter().map(|e| e.len() as u64).sum(),
            out.ops.keys_generated,
            out.ops.cache_hits,
        );
        self.obs.event(ObsEvent::Leave { user: user.0 });

        self.stats.push(OpRecord {
            kind: OpKind::Leave,
            requests: 1,
            msg_sizes: encoded.iter().map(|e| e.len() as u32).collect(),
            proc_ns,
            encryptions: out.ops.key_encryptions,
            signatures,
        });
        self.log_op(WalOp::Leave(user))?;
        Ok(ProcessedOp { seq, packets, derived, encoded, join_grant: None })
    }

    /// Rotate the group key without any membership change: bump the root
    /// key's version and distribute the new key to the whole group under
    /// the old one. Used for periodic rotation, and after crash recovery
    /// to fence off any group key that may have leaked with the dead
    /// process.
    pub fn refresh_group_key(&mut self) -> Result<ProcessedOp, RequestError> {
        if self.config.strategy == Strategy::Derived {
            return self.refresh_group_key_derived();
        }
        let _op_span = self.obs.span("op.refresh");
        let start = Instant::now();
        let path = self.tree.refresh_group_key(&mut self.keygen);
        let messages = if self.tree.user_count() == 0 {
            // Nobody to tell; the rotation still happened (and consumed
            // one keygen output), but no rekey message is emitted and no
            // IV stream is consumed.
            Vec::new()
        } else {
            let mut rekeyer =
                ParRekeyer::new(self.config.cipher, &mut self.ivs, self.pool.as_ref());
            rekeyer.refresh(&path).messages
        };
        let seq = self.next_seq();
        let (packets, encoded, signatures) =
            self.authenticate_and_encode(seq, OpKind::Refresh, messages);
        let proc_ns = start.elapsed().as_nanos() as u64;
        self.metrics.req_refresh.inc();
        self.metrics.signatures.add(signatures);
        // A refresh regenerates exactly the root key and (when anyone is
        // listening) seals it once under the old group key.
        self.ledger.refresh.record(
            if encoded.is_empty() { 0 } else { 1 },
            encoded.len() as u64,
            encoded.iter().map(|e| e.len() as u64).sum(),
            1,
            0,
        );
        self.obs.event(ObsEvent::Refresh);

        self.stats.push(OpRecord {
            kind: OpKind::Refresh,
            requests: 0,
            msg_sizes: encoded.iter().map(|e| e.len() as u32).collect(),
            proc_ns,
            encryptions: if encoded.is_empty() { 0 } else { 1 },
            signatures,
        });
        self.log_op(WalOp::Refresh)?;
        Ok(ProcessedOp { seq, packets, derived: Vec::new(), encoded, join_grant: None })
    }

    /// [`Self::refresh_group_key`] under `strategy = derived`: the new
    /// root key is derived from the old one and a published code, so the
    /// packet carries zero ciphertext — just the code and a one-entry
    /// worklist. Members pay one HMAC each; the server seals nothing.
    fn refresh_group_key_derived(&mut self) -> Result<ProcessedOp, RequestError> {
        let _op_span = self.obs.span("op.refresh");
        let start = Instant::now();
        let code = self.keygen.generate(DERIVATION_CODE_LEN);
        let path = {
            let _s = self.obs.span("tree");
            self.tree.refresh_group_key_derived(&code)
        };
        let (code, changed) = if self.tree.user_count() == 0 {
            // The rotation happened (and consumed one code draw, keeping
            // replay deterministic), but there is nobody to tell.
            (Vec::new(), Vec::new())
        } else {
            (code, links_from_path(std::slice::from_ref(&path)))
        };
        let seq = self.next_seq();
        let (derived, encoded, signatures) =
            self.authenticate_and_encode_derived(seq, OpKind::Refresh, code, changed, Vec::new());
        let proc_ns = start.elapsed().as_nanos() as u64;
        self.metrics.req_refresh.inc();
        self.metrics.signatures.add(signatures);
        // Nothing sealed, nothing drawn from the key DRBG: the root was
        // derived, and the group recomputes it from the code.
        self.ledger.refresh.record(
            0,
            encoded.len() as u64,
            encoded.iter().map(|e| e.len() as u64).sum(),
            0,
            0,
        );
        self.obs.event(ObsEvent::Refresh);

        self.stats.push(OpRecord {
            kind: OpKind::Refresh,
            requests: 0,
            msg_sizes: encoded.iter().map(|e| e.len() as u32).collect(),
            proc_ns,
            encryptions: 0,
            signatures,
        });
        self.log_op(WalOp::DerivedRefresh)?;
        Ok(ProcessedOp { seq, packets: Vec::new(), derived, encoded, join_grant: None })
    }

    /// Whether this server batches rekeys.
    pub fn is_batched(&self) -> bool {
        self.scheduler.is_some()
    }

    /// Requests queued for the next interval (0 in immediate mode).
    pub fn pending_requests(&self) -> usize {
        self.scheduler.as_ref().map_or(0, |s| s.pending())
    }

    /// Whether `user` has a join queued for the next interval.
    pub fn has_pending_join(&self, user: UserId) -> bool {
        self.scheduler.as_ref().is_some_and(|s| s.has_pending_join(user))
    }

    /// Queue a join for the next rekey interval (batched mode only).
    ///
    /// Access control and membership are checked here, at admission time;
    /// the individual key is generated now and handed out with the grant
    /// when the interval flushes. Joining while a leave for the same user
    /// is queued is allowed (leave-then-rejoin within one interval).
    pub fn enqueue_join(&mut self, user: UserId) -> Result<(), RequestError> {
        if self.scheduler.is_none() {
            return Err(RequestError::NotBatched);
        }
        if !self.acl.permits(user) {
            return Err(RequestError::JoinDenied(user));
        }
        let sched = self.scheduler.as_ref().expect("checked above");
        if self.tree.is_member(user) && !sched.has_pending_leave(user) {
            return Err(RequestError::Tree(TreeError::AlreadyMember(user)));
        }
        let individual_key = self.keygen.generate_key(self.config.key_len());
        self.scheduler.as_mut().expect("checked above").enqueue_join(user, individual_key);
        self.log_op(WalOp::EnqueueJoin(user))?;
        Ok(())
    }

    /// Queue a leave for the next rekey interval (batched mode only).
    ///
    /// A leave for a user whose join is still queued cancels that join.
    pub fn enqueue_leave(&mut self, user: UserId) -> Result<(), RequestError> {
        let Some(sched) = self.scheduler.as_mut() else {
            return Err(RequestError::NotBatched);
        };
        if !self.tree.is_member(user) && !sched.has_pending_join(user) {
            return Err(RequestError::Tree(TreeError::NotAMember(user)));
        }
        sched.enqueue_leave(user);
        self.log_op(WalOp::EnqueueLeave(user))?;
        Ok(())
    }

    /// Flush the pending interval if the schedule says so (interval
    /// elapsed or queue depth reached). `Ok(None)` when there is nothing
    /// to do — including on an immediate-mode server, so drivers can tick
    /// unconditionally.
    pub fn tick(&mut self, now_ms: u64) -> Result<Option<ProcessedBatch>, RequestError> {
        let Some(sched) = self.scheduler.as_mut() else { return Ok(None) };
        match sched.poll(now_ms) {
            None => Ok(None),
            Some(pending) => {
                let batch = self.process_batch(pending)?;
                self.log_op(WalOp::Flush { now_ms })?;
                Ok(Some(batch))
            }
        }
    }

    /// Flush the pending interval unconditionally (tests, shutdown).
    ///
    /// An empty flush still resets the interval clock, so it is logged
    /// too — replay must reproduce the same schedule.
    pub fn flush(&mut self, now_ms: u64) -> Result<Option<ProcessedBatch>, RequestError> {
        let Some(sched) = self.scheduler.as_mut() else { return Ok(None) };
        let result = match sched.take(now_ms) {
            None => None,
            Some(pending) => Some(self.process_batch(pending)?),
        };
        self.log_op(WalOp::Flush { now_ms })?;
        Ok(result)
    }

    /// Graceful shutdown: flush the pending rekey interval (if any), write
    /// a final snapshot, and fsync — in that order, so the snapshot
    /// captures the post-flush tree and a subsequent
    /// [`recover`](GroupKeyServer::recover) replays **zero** WAL records.
    /// Returns the final batch so the caller can dispatch its rekey
    /// traffic and acks before the process exits. Safe on in-memory and
    /// immediate-mode servers (both persistence steps are no-ops, and an
    /// unbatched server has nothing to flush).
    pub fn shutdown(&mut self, now_ms: u64) -> Result<Option<ProcessedBatch>, RequestError> {
        let batch = self.flush(now_ms)?;
        self.force_snapshot()?;
        self.sync_persistence()?;
        Ok(batch)
    }

    /// WAL records a restart would replay right now: 0 immediately after
    /// a snapshot (in particular after [`shutdown`](GroupKeyServer::shutdown)).
    /// `None` for in-memory servers.
    pub fn wal_tail(&self) -> Option<u64> {
        self.persist.as_ref().map(|p| p.ops_since_snapshot())
    }

    /// Apply one interval's queued requests: mark + replace the union of
    /// the changed paths once, build the consolidated rekey messages,
    /// authenticate, encode, and record one per-interval stats record.
    fn process_batch(
        &mut self,
        pending: kg_batch::PendingBatch,
    ) -> Result<ProcessedBatch, RequestError> {
        let n_joins = pending.joins.len() as u32;
        let n_leaves = pending.leaves.len() as u32;
        let derived_mode = self.config.strategy == Strategy::Derived;
        // Forward secrecy: only a leave-free interval may derive its new
        // keys from the old ones. Any interval containing a leave ships
        // fresh keys via the shipped fallback strategy instead.
        let pure_join = pending.leaves.is_empty();
        let _op_span = self.obs.span("op.batch");
        let start = Instant::now();
        let (ev, changed, code) = {
            let _s = self.obs.span("tree");
            if derived_mode && pure_join {
                let code = self.keygen.generate(DERIVATION_CODE_LEN);
                let (ev, links) =
                    self.tree.apply_batch_derived(&pending.joins, &mut self.keygen, &code)?;
                (ev, links, code)
            } else {
                let ev =
                    self.tree.apply_batch(&pending.joins, &pending.leaves, &mut self.keygen)?;
                (ev, Vec::new(), Vec::new())
            }
        };
        let out = {
            let _s = self.obs.span("encrypt");
            let mut rekeyer =
                ParRekeyer::new(self.config.cipher, &mut self.ivs, self.pool.as_ref());
            let strategy = if pure_join {
                self.config.strategy
            } else {
                self.config.strategy.shipped_fallback()
            };
            rekeyer.batch(&ev, strategy)
        };
        let timestamp_ms = self.next_seq(); // keep the logical clock shared
        let (packets, derived, encoded, signatures) = if derived_mode {
            let (derived, encoded, signatures) = self.authenticate_and_encode_derived_at(
                timestamp_ms,
                pending.interval,
                OpKind::Batch,
                code,
                changed,
                out.messages,
            );
            (Vec::new(), derived, encoded, signatures)
        } else {
            let (packets, encoded, signatures) = self.authenticate_and_encode_batch(
                pending.interval,
                timestamp_ms,
                n_joins,
                n_leaves,
                out.messages,
            );
            (packets, Vec::new(), encoded, signatures)
        };
        let proc_ns = start.elapsed().as_nanos() as u64;
        self.metrics.req_batch.inc();
        self.metrics.encryptions.add(out.ops.key_encryptions);
        self.metrics.signatures.add(signatures);
        self.metrics.cache_hits.add(out.ops.cache_hits);
        self.metrics.cache_misses.add(out.ops.cache_misses);
        self.ledger.batch.record(
            out.ops.key_encryptions,
            encoded.len() as u64,
            encoded.iter().map(|e| e.len() as u64).sum(),
            out.ops.keys_generated,
            out.ops.cache_hits,
        );

        self.stats.push(OpRecord {
            kind: OpKind::Batch,
            requests: n_joins + n_leaves,
            msg_sizes: encoded.iter().map(|e| e.len() as u32).collect(),
            proc_ns,
            encryptions: out.ops.key_encryptions,
            signatures,
        });
        let grants = ev
            .joins
            .iter()
            .map(|j| JoinGrant {
                user: j.user,
                individual_key: j.leaf_key.clone(),
                leaf_label: j.leaf_label,
                path_labels: j.path.iter().map(|(r, _)| r.label).collect(),
            })
            .collect();
        // Core-level `departed` lists every leaver, including users who
        // rejoined in the same interval; the server view keeps only true
        // departures (a rejoiner keeps its endpoint and gets a new grant).
        let departed = ev.departed.into_iter().filter(|&u| !self.tree.is_member(u)).collect();
        Ok(ProcessedBatch {
            interval: pending.interval,
            packets,
            derived,
            encoded,
            grants,
            departed,
        })
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Compute per-packet authentication tags for the given encoded
    /// bodies. Returns the tags (one per body, in body order) and the
    /// number of RSA signing operations performed.
    ///
    /// The per-packet policies fan out across the worker pool when one
    /// is configured and there are enough packets to pay for the trip:
    /// each MD5/RSA computation depends only on its own body bytes, and
    /// PKCS#1 v1.5 signing is deterministic, so the tags are identical
    /// to the sequential ones. `SignBatch` stays sequential by design —
    /// it performs a *single* RSA operation over the digest-tree root
    /// (that is its whole point, §4), so there is nothing to fan out;
    /// the interior digest tree is cheap relative to that one RSA op.
    fn compute_auth_tags(&self, bodies: &[Vec<u8>]) -> (Vec<AuthTag>, u64) {
        /// Digests are ~µs-cheap; only fan out with real packet counts.
        const PAR_DIGEST_MIN: usize = 4;
        /// RSA signing is ~ms-expensive; fan out as soon as two packets
        /// can sign concurrently.
        const PAR_SIGN_MIN: usize = 2;
        match self.config.auth {
            AuthPolicy::None => (vec![AuthTag::None; bodies.len()], 0),
            AuthPolicy::Digest => {
                let digest = self.config.digest;
                let tags = match &self.pool {
                    Some(pool) if bodies.len() >= PAR_DIGEST_MIN => pool
                        .scatter(bodies.to_vec(), move |_, body| {
                            AuthTag::Digest(digest.hash(&body))
                        }),
                    _ => bodies.iter().map(|b| AuthTag::Digest(digest.hash(b))).collect(),
                };
                (tags, 0)
            }
            AuthPolicy::SignEach => {
                let key = self.rsa.as_ref().expect("policy requires key").private.clone();
                let digest = self.config.digest;
                let n = bodies.len() as u64;
                let tags = match &self.pool {
                    Some(pool) if bodies.len() >= PAR_SIGN_MIN => {
                        pool.scatter(bodies.to_vec(), move |_, body| AuthTag::Signed {
                            signature: key.sign(digest, &body).expect("signing"),
                        })
                    }
                    _ => bodies
                        .iter()
                        .map(|body| AuthTag::Signed {
                            signature: key.sign(digest, body).expect("signing"),
                        })
                        .collect(),
                };
                (tags, n)
            }
            AuthPolicy::SignBatch => {
                if bodies.is_empty() {
                    return (Vec::new(), 0);
                }
                let key = self.rsa.as_ref().expect("policy requires key").private.clone();
                let refs: Vec<&[u8]> = bodies.iter().map(|b| b.as_slice()).collect();
                let batch =
                    merkle::sign_batch(&key, self.config.digest, &refs).expect("batch signing");
                let tags = batch
                    .paths
                    .into_iter()
                    .map(|path| AuthTag::MerkleSigned {
                        root_signature: batch.root_signature.clone(),
                        path,
                    })
                    .collect();
                (tags, 1)
            }
        }
    }

    /// Attach the configured authenticity tag to every message and encode.
    /// Returns (packets, encodings, signature-op count).
    fn authenticate_and_encode(
        &mut self,
        seq: u64,
        op: OpKind,
        messages: Vec<RekeyMessage>,
    ) -> (Vec<RekeyPacket>, Vec<Vec<u8>>, u64) {
        let timestamp_ms = seq; // deterministic logical timestamp
        let mut packets: Vec<RekeyPacket> = messages
            .into_iter()
            .map(|message| RekeyPacket { seq, op, timestamp_ms, message, auth: AuthTag::None })
            .collect();
        let sign_span = self.obs.span("sign");
        let signatures = if matches!(self.config.auth, AuthPolicy::None) {
            0 // skip body encoding entirely on the unauthenticated path
        } else {
            let bodies: Vec<Vec<u8>> = packets.iter().map(|p| p.encode_body()).collect();
            let (tags, signatures) = self.compute_auth_tags(&bodies);
            for (p, tag) in packets.iter_mut().zip(tags) {
                p.auth = tag;
            }
            signatures
        };
        drop(sign_span);
        let _encode_span = self.obs.span("encode");
        let encoded: Vec<Vec<u8>> = packets.iter().map(|p| p.encode()).collect();
        (packets, encoded, signatures)
    }

    /// [`Self::authenticate_and_encode`] for an interval's batch packets.
    fn authenticate_and_encode_batch(
        &mut self,
        interval: u64,
        timestamp_ms: u64,
        joins: u32,
        leaves: u32,
        messages: Vec<RekeyMessage>,
    ) -> (Vec<BatchRekeyPacket>, Vec<Vec<u8>>, u64) {
        let mut packets: Vec<BatchRekeyPacket> = messages
            .into_iter()
            .map(|message| BatchRekeyPacket {
                interval,
                timestamp_ms,
                joins,
                leaves,
                message,
                auth: AuthTag::None,
            })
            .collect();
        let sign_span = self.obs.span("sign");
        let signatures = if matches!(self.config.auth, AuthPolicy::None) {
            0
        } else {
            let bodies: Vec<Vec<u8>> = packets.iter().map(|p| p.encode_body()).collect();
            let (tags, signatures) = self.compute_auth_tags(&bodies);
            for (p, tag) in packets.iter_mut().zip(tags) {
                p.auth = tag;
            }
            signatures
        };
        drop(sign_span);
        let _encode_span = self.obs.span("encode");
        let encoded: Vec<Vec<u8>> = packets.iter().map(|p| p.encode()).collect();
        (packets, encoded, signatures)
    }

    /// [`Self::authenticate_and_encode`] for an immediate derived op: the
    /// interval counter is the shared logical clock, offset so that it
    /// starts at 1 like batch interval numbering (clients treat an equal
    /// interval as idempotent redelivery, so 0 would alias their initial
    /// state).
    fn authenticate_and_encode_derived(
        &mut self,
        seq: u64,
        op: OpKind,
        code: Vec<u8>,
        changed: Vec<DerivedLink>,
        messages: Vec<RekeyMessage>,
    ) -> (Vec<DerivedRekeyPacket>, Vec<Vec<u8>>, u64) {
        self.authenticate_and_encode_derived_at(seq, seq + 1, op, code, changed, messages)
    }

    /// Build, authenticate, and encode the operation's single
    /// [`DerivedRekeyPacket`]. An operation with nothing to say (no code,
    /// no worklist, no bundles — e.g. the last member leaving) emits no
    /// packet at all, matching the shipped strategies.
    fn authenticate_and_encode_derived_at(
        &mut self,
        seq: u64,
        interval: u64,
        op: OpKind,
        code: Vec<u8>,
        changed: Vec<DerivedLink>,
        messages: Vec<RekeyMessage>,
    ) -> (Vec<DerivedRekeyPacket>, Vec<Vec<u8>>, u64) {
        if code.is_empty() && changed.is_empty() && messages.is_empty() {
            return (Vec::new(), Vec::new(), 0);
        }
        let mut packet = DerivedRekeyPacket {
            seq,
            interval,
            op,
            timestamp_ms: seq, // deterministic logical timestamp
            code,
            changed,
            messages,
            auth: AuthTag::None,
        };
        let sign_span = self.obs.span("sign");
        let signatures = if matches!(self.config.auth, AuthPolicy::None) {
            0
        } else {
            let bodies = vec![packet.encode_body()];
            let (tags, signatures) = self.compute_auth_tags(&bodies);
            packet.auth = tags.into_iter().next().expect("one body, one tag");
            signatures
        };
        drop(sign_span);
        let _encode_span = self.obs.span("encode");
        let encoded = vec![packet.encode()];
        (vec![packet], encoded, signatures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::rekey::{Recipients, Strategy};

    fn server(auth: AuthPolicy, strategy: Strategy) -> GroupKeyServer {
        let config = ServerConfig { auth, strategy, rsa_bits: 512, ..ServerConfig::default() };
        GroupKeyServer::new(config, AccessControl::AllowAll)
    }

    fn populate(s: &mut GroupKeyServer, n: u64) {
        for i in 0..n {
            s.handle_join(UserId(i)).unwrap();
        }
    }

    /// A server at any worker count emits exactly the bytes of the
    /// sequential server: same encoded packets, same stats, same
    /// signatures. Exercises every auth policy (the sign/digest fan-out
    /// paths included) and both immediate ops, on the same op schedule.
    #[test]
    fn worker_count_never_changes_output_bytes() {
        for auth in
            [AuthPolicy::None, AuthPolicy::Digest, AuthPolicy::SignEach, AuthPolicy::SignBatch]
        {
            let config =
                ServerConfig { auth, strategy: Strategy::KeyOriented, ..ServerConfig::default() };
            let par_config = ServerConfig {
                // Clamp off: the byte-identity guarantee must hold with
                // real pool threads even on a single-core test host.
                parallel: ParallelConfig { workers: 4, clamp_to_hardware: false },
                ..config.clone()
            };
            let mut seq_srv = GroupKeyServer::new(config, AccessControl::AllowAll);
            let mut par_srv = GroupKeyServer::new(par_config, AccessControl::AllowAll);
            for i in 0..20 {
                let a = seq_srv.handle_join(UserId(i)).unwrap();
                let b = par_srv.handle_join(UserId(i)).unwrap();
                assert_eq!(a.encoded, b.encoded, "join bytes diverged ({auth:?})");
            }
            let a = seq_srv.handle_leave(UserId(7)).unwrap();
            let b = par_srv.handle_leave(UserId(7)).unwrap();
            assert_eq!(a.encoded, b.encoded, "leave bytes diverged ({auth:?})");
            let a = seq_srv.refresh_group_key().unwrap();
            let b = par_srv.refresh_group_key().unwrap();
            assert_eq!(a.encoded, b.encoded, "refresh bytes diverged ({auth:?})");
            let sa = seq_srv.stats().records().last().unwrap();
            let sb = par_srv.stats().records().last().unwrap();
            assert_eq!(sa.signatures, sb.signatures);
            assert_eq!(sa.encryptions, sb.encryptions);
        }
    }

    /// Batched-mode flushes, too, are byte-identical across worker
    /// counts — the interval pipeline is where most fan-out happens.
    #[test]
    fn worker_count_never_changes_batch_output_bytes() {
        let config = ServerConfig {
            rekey: RekeyPolicy::Batched { interval_ms: 100, max_pending: 1024 },
            ..ServerConfig::default()
        };
        let par_config = ServerConfig {
            parallel: ParallelConfig { workers: 3, clamp_to_hardware: false },
            ..config.clone()
        };
        let mut seq_srv = GroupKeyServer::new(config, AccessControl::AllowAll);
        let mut par_srv = GroupKeyServer::new(par_config, AccessControl::AllowAll);
        for s in [&mut seq_srv, &mut par_srv] {
            for i in 0..64 {
                s.enqueue_join(UserId(i)).unwrap();
            }
        }
        let a = seq_srv.flush(100).unwrap().unwrap();
        let b = par_srv.flush(100).unwrap().unwrap();
        assert_eq!(a.encoded, b.encoded);
        for s in [&mut seq_srv, &mut par_srv] {
            for i in 0..32 {
                s.enqueue_leave(UserId(i * 2)).unwrap();
            }
            s.enqueue_join(UserId(100)).unwrap();
        }
        let a = seq_srv.flush(200).unwrap().unwrap();
        let b = par_srv.flush(200).unwrap().unwrap();
        assert_eq!(a.encoded, b.encoded);
        assert_eq!(a.grants.len(), b.grants.len());
        assert_eq!(a.departed, b.departed);
    }

    #[test]
    fn join_produces_grant_and_packets() {
        let mut s = server(AuthPolicy::None, Strategy::GroupOriented);
        populate(&mut s, 8);
        let op = s.handle_join(UserId(100)).unwrap();
        let grant = op.join_grant.as_ref().unwrap();
        assert_eq!(grant.user, UserId(100));
        assert!(!grant.path_labels.is_empty());
        assert_eq!(op.packets.len(), 2); // group multicast + joiner unicast
        assert_eq!(op.packets.len(), op.encoded.len());
        assert_eq!(s.group_size(), 9);
    }

    #[test]
    fn leave_requires_membership() {
        let mut s = server(AuthPolicy::None, Strategy::GroupOriented);
        populate(&mut s, 4);
        assert!(matches!(
            s.handle_leave(UserId(999)).unwrap_err(),
            RequestError::Tree(TreeError::NotAMember(_))
        ));
        s.handle_leave(UserId(2)).unwrap();
        assert_eq!(s.group_size(), 3);
        assert!(!s.is_member(UserId(2)));
    }

    #[test]
    fn acl_denies_join() {
        let config = ServerConfig::default();
        let mut s = GroupKeyServer::new(config, AccessControl::allow_list([UserId(1)]));
        assert!(s.handle_join(UserId(1)).is_ok());
        assert_eq!(s.handle_join(UserId(2)).unwrap_err(), RequestError::JoinDenied(UserId(2)));
    }

    #[test]
    fn duplicate_join_rejected() {
        let mut s = server(AuthPolicy::None, Strategy::GroupOriented);
        s.handle_join(UserId(5)).unwrap();
        assert!(matches!(
            s.handle_join(UserId(5)).unwrap_err(),
            RequestError::Tree(TreeError::AlreadyMember(_))
        ));
    }

    #[test]
    fn digest_policy_attaches_valid_digest() {
        let mut s = server(AuthPolicy::Digest, Strategy::GroupOriented);
        populate(&mut s, 4);
        let op = s.handle_join(UserId(9)).unwrap();
        for (p, enc) in op.packets.iter().zip(&op.encoded) {
            let AuthTag::Digest(d) = &p.auth else { panic!("expected digest") };
            let (decoded, body_len) = RekeyPacket::decode(enc).unwrap();
            assert_eq!(d, &s.config().digest.hash(&enc[..body_len]));
            assert_eq!(&decoded, p);
        }
    }

    #[test]
    fn sign_each_produces_verifiable_signatures() {
        let mut s = server(AuthPolicy::SignEach, Strategy::KeyOriented);
        populate(&mut s, 8);
        let op = s.handle_leave(UserId(3)).unwrap();
        let pk = s.public_key().unwrap();
        let mut count = 0;
        for (p, enc) in op.packets.iter().zip(&op.encoded) {
            let AuthTag::Signed { signature } = &p.auth else { panic!("expected signature") };
            let (_, body_len) = RekeyPacket::decode(enc).unwrap();
            pk.verify(s.config().digest, &enc[..body_len], signature).unwrap();
            count += 1;
        }
        assert!(count > 1, "key-oriented leave sends several messages");
        let rec = s.stats().records().last().unwrap();
        assert_eq!(rec.signatures, count as u64);
    }

    #[test]
    fn sign_batch_uses_one_signature_for_all_messages() {
        let mut s = server(AuthPolicy::SignBatch, Strategy::KeyOriented);
        populate(&mut s, 16);
        let op = s.handle_leave(UserId(7)).unwrap();
        let pk = s.public_key().unwrap();
        assert!(op.packets.len() > 1);
        let mut roots = std::collections::BTreeSet::new();
        for (p, enc) in op.packets.iter().zip(&op.encoded) {
            let AuthTag::MerkleSigned { root_signature, path } = &p.auth else {
                panic!("expected merkle")
            };
            roots.insert(root_signature.clone());
            let (_, body_len) = RekeyPacket::decode(enc).unwrap();
            merkle::verify_message(pk, s.config().digest, &enc[..body_len], path, root_signature)
                .unwrap();
        }
        assert_eq!(roots.len(), 1, "single signature shared by the batch");
        let rec = s.stats().records().last().unwrap();
        assert_eq!(rec.signatures, 1);
    }

    #[test]
    fn stats_track_sizes_and_encryptions() {
        let mut s = server(AuthPolicy::None, Strategy::GroupOriented);
        populate(&mut s, 64);
        s.reset_stats();
        s.handle_join(UserId(200)).unwrap();
        s.handle_leave(UserId(200)).unwrap();
        let agg = s.stats().aggregate(None).unwrap();
        assert_eq!(agg.ops, 2);
        assert!(agg.msg_size_ave > 0.0);
        assert!(agg.encryptions_ave > 0.0);
        let join = s.stats().aggregate(Some(OpKind::Join)).unwrap();
        let leave = s.stats().aggregate(Some(OpKind::Leave)).unwrap();
        // Group-oriented: join sends 2 messages, leave sends 1.
        assert_eq!(join.msgs_per_op, 2.0);
        assert_eq!(leave.msgs_per_op, 1.0);
        // Leave encrypts ~d(h−1), join 2(h−1)+(h−1); comparable magnitudes.
        assert!(leave.encryptions_ave > join.encryptions_ave / 2.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let config = ServerConfig { seed, ..ServerConfig::default() };
            let mut s = GroupKeyServer::new(config, AccessControl::AllowAll);
            populate(&mut s, 10);
            let op = s.handle_leave(UserId(4)).unwrap();
            op.encoded.clone()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn last_member_leave_sends_nothing() {
        let mut s = server(AuthPolicy::SignBatch, Strategy::GroupOriented);
        s.handle_join(UserId(1)).unwrap();
        let op = s.handle_leave(UserId(1)).unwrap();
        assert!(op.packets.is_empty());
        assert_eq!(s.group_size(), 0);
        let rec = s.stats().records().last().unwrap();
        assert_eq!(rec.signatures, 0);
    }

    fn batched_server(strategy: Strategy, interval_ms: u64, max_pending: usize) -> GroupKeyServer {
        let config = ServerConfig {
            strategy,
            rekey: crate::RekeyPolicy::Batched { interval_ms, max_pending },
            ..ServerConfig::default()
        };
        GroupKeyServer::new(config, AccessControl::AllowAll)
    }

    /// Immediate-mode populate is unavailable in batched mode; seed the
    /// group through one big interval instead.
    fn populate_batched(s: &mut GroupKeyServer, n: u64, now_ms: u64) {
        for i in 0..n {
            s.enqueue_join(UserId(i)).unwrap();
        }
        s.flush(now_ms).unwrap().unwrap();
    }

    #[test]
    fn batched_interval_flushes_on_time_not_before() {
        let mut s = batched_server(Strategy::GroupOriented, 100, 1000);
        populate_batched(&mut s, 16, 0);
        s.enqueue_join(UserId(100)).unwrap();
        s.enqueue_leave(UserId(3)).unwrap();
        assert_eq!(s.pending_requests(), 2);
        assert!(s.tick(50).unwrap().is_none(), "interval not yet elapsed");
        let batch = s.tick(100).unwrap().expect("interval elapsed");
        assert_eq!(batch.interval, 2);
        assert_eq!(batch.grants.len(), 1);
        assert_eq!(batch.grants[0].user, UserId(100));
        assert_eq!(batch.departed, vec![UserId(3)]);
        assert!(!batch.packets.is_empty());
        assert!(s.is_member(UserId(100)));
        assert!(!s.is_member(UserId(3)));
        // One per-interval stats record covering both requests.
        let rec = s.stats().records().last().unwrap();
        assert_eq!(rec.kind, OpKind::Batch);
        assert_eq!(rec.requests, 2);
        assert!(rec.encryptions > 0);
    }

    #[test]
    fn batched_queue_depth_forces_early_flush() {
        let mut s = batched_server(Strategy::GroupOriented, 1_000_000, 4);
        populate_batched(&mut s, 8, 0);
        for i in 100..103 {
            s.enqueue_join(UserId(i)).unwrap();
        }
        assert!(s.tick(1).unwrap().is_none());
        s.enqueue_join(UserId(103)).unwrap();
        let batch = s.tick(1).unwrap().expect("depth threshold");
        assert_eq!(batch.grants.len(), 4);
        assert_eq!(s.group_size(), 12);
    }

    #[test]
    fn batched_mode_validates_at_enqueue_time() {
        let mut s = batched_server(Strategy::GroupOriented, 100, 100);
        populate_batched(&mut s, 4, 0);
        assert!(matches!(
            s.enqueue_join(UserId(2)).unwrap_err(),
            RequestError::Tree(TreeError::AlreadyMember(_))
        ));
        assert!(matches!(
            s.enqueue_leave(UserId(77)).unwrap_err(),
            RequestError::Tree(TreeError::NotAMember(_))
        ));
        // Leave-then-rejoin within one interval is allowed.
        s.enqueue_leave(UserId(2)).unwrap();
        s.enqueue_join(UserId(2)).unwrap();
        let batch = s.flush(10).unwrap().unwrap();
        assert_eq!(batch.grants.len(), 1);
        assert!(batch.departed.is_empty(), "rejoin is not a departure");
        assert!(s.is_member(UserId(2)));
    }

    #[test]
    fn batched_acl_denial_happens_at_enqueue() {
        let config = ServerConfig {
            rekey: crate::RekeyPolicy::Batched { interval_ms: 10, max_pending: 10 },
            ..ServerConfig::default()
        };
        let mut s = GroupKeyServer::new(config, AccessControl::allow_list([UserId(1)]));
        s.enqueue_join(UserId(1)).unwrap();
        assert_eq!(s.enqueue_join(UserId(2)).unwrap_err(), RequestError::JoinDenied(UserId(2)));
        let batch = s.flush(0).unwrap().unwrap();
        assert_eq!(batch.grants.len(), 1);
    }

    #[test]
    fn enqueue_requires_batched_mode_and_tick_is_harmless() {
        let mut s = server(AuthPolicy::None, Strategy::GroupOriented);
        assert!(!s.is_batched());
        assert_eq!(s.enqueue_join(UserId(1)).unwrap_err(), RequestError::NotBatched);
        assert_eq!(s.enqueue_leave(UserId(1)).unwrap_err(), RequestError::NotBatched);
        assert!(s.tick(1_000).unwrap().is_none());
        assert!(s.flush(1_000).unwrap().is_none());
    }

    #[test]
    fn batch_packets_carry_auth_under_every_policy() {
        for auth in [AuthPolicy::Digest, AuthPolicy::SignEach, AuthPolicy::SignBatch] {
            let config = ServerConfig {
                auth,
                rekey: crate::RekeyPolicy::Batched { interval_ms: 10, max_pending: 1000 },
                rsa_bits: 512,
                ..ServerConfig::default()
            };
            let mut s = GroupKeyServer::new(config, AccessControl::AllowAll);
            populate_batched(&mut s, 12, 0);
            for i in 100..104 {
                s.enqueue_join(UserId(i)).unwrap();
            }
            s.enqueue_leave(UserId(5)).unwrap();
            let batch = s.flush(10).unwrap().unwrap();
            for (p, enc) in batch.packets.iter().zip(&batch.encoded) {
                let (decoded, body_len) = kg_wire::BatchRekeyPacket::decode(enc).unwrap();
                assert_eq!(&decoded, p);
                match (&p.auth, auth) {
                    (AuthTag::Digest(d), AuthPolicy::Digest) => {
                        assert_eq!(d, &s.config().digest.hash(&enc[..body_len]));
                    }
                    (AuthTag::Signed { signature }, AuthPolicy::SignEach) => {
                        s.public_key()
                            .unwrap()
                            .verify(s.config().digest, &enc[..body_len], signature)
                            .unwrap();
                    }
                    (AuthTag::MerkleSigned { root_signature, path }, AuthPolicy::SignBatch) => {
                        merkle::verify_message(
                            s.public_key().unwrap(),
                            s.config().digest,
                            &enc[..body_len],
                            path,
                            root_signature,
                        )
                        .unwrap();
                    }
                    (tag, policy) => panic!("unexpected tag {tag:?} under {policy:?}"),
                }
            }
        }
    }

    #[test]
    fn recipients_cover_all_members_for_each_strategy() {
        for strategy in Strategy::ALL {
            let mut s = server(AuthPolicy::None, strategy);
            populate(&mut s, 27);
            let op = s.handle_leave(UserId(13)).unwrap();
            // Union of resolved recipient sets must equal the remaining
            // membership.
            let mut covered = std::collections::BTreeSet::new();
            for p in &op.packets {
                let users: Vec<UserId> = match &p.message.recipients {
                    Recipients::User(u) => vec![*u],
                    Recipients::Subgroup(l) => s.tree().userset(*l),
                    Recipients::SubgroupExcept { include, exclude } => {
                        s.tree().userset_except(*include, *exclude)
                    }
                    Recipients::Group => s.tree().members().collect(),
                };
                covered.extend(users);
            }
            let members: std::collections::BTreeSet<UserId> = s.tree().members().collect();
            assert_eq!(covered, members, "strategy {strategy:?}");
        }
    }

    // ---- derived strategy -----------------------------------------------

    #[test]
    fn derived_join_publishes_code_at_constant_cost() {
        let mut s = server(AuthPolicy::None, Strategy::Derived);
        populate(&mut s, 64);
        let before = s.stats().records().len();
        let op = s.handle_join(UserId(100)).unwrap();
        assert!(op.packets.is_empty(), "derived ops never ship RekeyPackets");
        assert_eq!(op.derived.len(), 1);
        let p = &op.derived[0];
        assert_eq!(p.op, kg_wire::OpKind::Join);
        assert_eq!(p.code.len(), kg_core::derive::DERIVATION_CODE_LEN);
        assert!(!p.changed.is_empty(), "join must publish derivation links");
        assert_eq!(p.messages.len(), 1, "only the joiner's unicast is sealed");
        assert!(op.join_grant.is_some());
        // O(1) bundles sealed: only the joiner's unicast, whose cost is the
        // path keys it packs. A shipped group-oriented join additionally
        // seals the whole path for the group multicast, doubling this.
        let rec = &s.stats().records()[before];
        assert_eq!(rec.encryptions, p.changed.len() as u64);
        // Everything multicasts: the joiner is subscribed before dispatch
        // and its bundle is sealed under a key only it holds.
        for (to, _) in op.frames() {
            assert_eq!(to, Recipients::Group);
        }
        assert_eq!(op.frames().len(), op.encoded.len());
    }

    #[test]
    fn derived_leave_ships_keys_for_forward_secrecy() {
        let mut s = server(AuthPolicy::None, Strategy::Derived);
        populate(&mut s, 16);
        let op = s.handle_leave(UserId(5)).unwrap();
        assert!(op.packets.is_empty());
        assert_eq!(op.derived.len(), 1);
        let p = &op.derived[0];
        assert_eq!(p.op, kg_wire::OpKind::Leave);
        // Derivation from keys the departed member held would leak the new
        // keys to them; a leave publishes no code and ships everything.
        assert!(p.code.is_empty());
        assert!(p.changed.is_empty());
        assert!(!p.messages.is_empty(), "replacement keys must be shipped");
        assert!(!s.is_member(UserId(5)));
    }

    #[test]
    fn derived_refresh_is_ciphertext_free() {
        let mut s = server(AuthPolicy::None, Strategy::Derived);
        populate(&mut s, 16);
        let before = s.stats().records().len();
        let op = s.refresh_group_key().unwrap();
        assert_eq!(op.derived.len(), 1);
        let p = &op.derived[0];
        assert_eq!(p.op, kg_wire::OpKind::Refresh);
        assert_eq!(p.code.len(), kg_core::derive::DERIVATION_CODE_LEN);
        assert_eq!(p.changed.len(), 1, "refresh rotates only the group key");
        assert!(p.messages.is_empty(), "no ciphertext: every member derives");
        assert_eq!(s.stats().records()[before].encryptions, 0);
    }

    #[test]
    fn derived_intervals_are_strictly_monotonic() {
        let mut s = server(AuthPolicy::None, Strategy::Derived);
        let mut last = 0;
        for i in 0..8 {
            let op = s.handle_join(UserId(i)).unwrap();
            let p = &op.derived[0];
            assert!(p.interval > last, "intervals must advance past {last}");
            last = p.interval;
        }
        let op = s.refresh_group_key().unwrap();
        assert!(op.derived[0].interval > last);
    }

    #[test]
    fn derived_packets_carry_auth_tags() {
        let mut s = server(AuthPolicy::Digest, Strategy::Derived);
        populate(&mut s, 4);
        let op = s.handle_join(UserId(50)).unwrap();
        assert!(!matches!(op.derived[0].auth, kg_wire::AuthTag::None));
        let mut s = server(AuthPolicy::SignEach, Strategy::Derived);
        populate(&mut s, 4);
        let op = s.refresh_group_key().unwrap();
        assert!(matches!(op.derived[0].auth, kg_wire::AuthTag::Signed { .. }));
    }

    #[test]
    fn derived_batch_pure_join_publishes_code() {
        let config = ServerConfig {
            strategy: Strategy::Derived,
            rekey: RekeyPolicy::Batched { interval_ms: 100, max_pending: 1024 },
            rsa_bits: 512,
            ..ServerConfig::default()
        };
        let mut s = GroupKeyServer::new(config, AccessControl::AllowAll);
        for i in 0..8 {
            s.enqueue_join(UserId(i)).unwrap();
        }
        let batch = s.flush(100).unwrap().unwrap();
        assert!(batch.packets.is_empty());
        assert_eq!(batch.derived.len(), 1);
        let p = &batch.derived[0];
        assert_eq!(p.op, kg_wire::OpKind::Batch);
        assert!(!p.code.is_empty());
        assert!(!p.changed.is_empty());
        assert_eq!(p.messages.len(), 8, "one sealed unicast per joiner");
        for (to, _) in batch.frames() {
            assert_eq!(to, Recipients::Group);
        }

        // An interval containing any leave falls back to shipping keys.
        s.enqueue_join(UserId(100)).unwrap();
        s.enqueue_leave(UserId(3)).unwrap();
        let batch = s.flush(200).unwrap().unwrap();
        assert_eq!(batch.derived.len(), 1);
        let p = &batch.derived[0];
        assert!(p.code.is_empty(), "leave intervals must not publish a code");
        assert!(p.changed.is_empty());
        assert!(!p.messages.is_empty());
    }

    // ---- crash recovery -------------------------------------------------

    fn scratch_dir() -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("kg-server-recover-{}-{n}", std::process::id()))
    }

    fn persist_config() -> PersistConfig {
        PersistConfig { fsync: kg_persist::FsyncPolicy::EveryRecord, ..PersistConfig::default() }
    }

    #[test]
    fn persisted_server_recovers_identically() {
        let dir = scratch_dir();
        let config = ServerConfig { rsa_bits: 512, ..ServerConfig::default() };
        let mut control = GroupKeyServer::new(config.clone(), AccessControl::AllowAll);
        let mut s = GroupKeyServer::with_persistence(
            config.clone(),
            AccessControl::AllowAll,
            &dir,
            persist_config(),
        )
        .unwrap();
        for i in 0..20 {
            s.handle_join(UserId(i)).unwrap();
            control.handle_join(UserId(i)).unwrap();
        }
        s.handle_leave(UserId(3)).unwrap();
        control.handle_leave(UserId(3)).unwrap();
        s.refresh_group_key().unwrap();
        control.refresh_group_key().unwrap();
        let digest_at_crash = serial::root_digest(s.tree());
        drop(s); // crash: no clean shutdown

        // Simulate a write torn mid-record by the crash: garbage bytes
        // past the last complete record must be discarded on recovery.
        {
            use std::io::Write;
            let mut f =
                std::fs::OpenOptions::new().append(true).open(dir.join("wal-0.kgl")).unwrap();
            f.write_all(&[0xFF; 7]).unwrap();
        }

        let mut r =
            GroupKeyServer::recover(config, AccessControl::AllowAll, &dir, persist_config())
                .unwrap();
        assert_eq!(serial::root_digest(r.tree()), digest_at_crash);
        assert_eq!(r.group_size(), 19);
        assert!(!r.is_member(UserId(3)));
        assert!(r.is_persistent());

        // Post-recovery ops continue the same deterministic key streams
        // as a server that never crashed.
        let a = r.handle_join(UserId(100)).unwrap();
        let b = control.handle_join(UserId(100)).unwrap();
        assert_eq!(a.encoded, b.encoded);
        assert_eq!(serial::root_digest(r.tree()), serial::root_digest(control.tree()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_server_recovers_mid_interval() {
        let dir = scratch_dir();
        let config = ServerConfig {
            rekey: RekeyPolicy::Batched { interval_ms: 100, max_pending: 1000 },
            rsa_bits: 512,
            ..ServerConfig::default()
        };
        let mut control = GroupKeyServer::new(config.clone(), AccessControl::AllowAll);
        let mut s = GroupKeyServer::with_persistence(
            config.clone(),
            AccessControl::AllowAll,
            &dir,
            persist_config(),
        )
        .unwrap();
        for i in 0..16 {
            s.enqueue_join(UserId(i)).unwrap();
            control.enqueue_join(UserId(i)).unwrap();
        }
        s.flush(0).unwrap().unwrap();
        control.flush(0).unwrap().unwrap();
        // Crash with requests queued but the interval not yet flushed.
        s.enqueue_join(UserId(100)).unwrap();
        control.enqueue_join(UserId(100)).unwrap();
        s.enqueue_leave(UserId(5)).unwrap();
        control.enqueue_leave(UserId(5)).unwrap();
        drop(s);

        let mut r =
            GroupKeyServer::recover(config, AccessControl::AllowAll, &dir, persist_config())
                .unwrap();
        assert_eq!(r.pending_requests(), 2, "queued requests survive the crash");
        let a = r.tick(100).unwrap().expect("interval elapsed");
        let b = control.tick(100).unwrap().expect("interval elapsed");
        assert_eq!(a.interval, b.interval);
        assert_eq!(a.encoded, b.encoded, "recovered batch is byte-identical");
        assert_eq!(a.departed, b.departed);
        assert_eq!(
            a.grants[0].individual_key.material(),
            b.grants[0].individual_key.material(),
            "queued joiner gets the key generated before the crash"
        );
        assert_eq!(serial::root_digest(r.tree()), serial::root_digest(control.tree()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn derived_server_recovers_identically() {
        let dir = scratch_dir();
        let config =
            ServerConfig { strategy: Strategy::Derived, rsa_bits: 512, ..ServerConfig::default() };
        let mut control = GroupKeyServer::new(config.clone(), AccessControl::AllowAll);
        let mut s = GroupKeyServer::with_persistence(
            config.clone(),
            AccessControl::AllowAll,
            &dir,
            persist_config(),
        )
        .unwrap();
        for i in 0..20 {
            s.handle_join(UserId(i)).unwrap();
            control.handle_join(UserId(i)).unwrap();
        }
        s.refresh_group_key().unwrap();
        control.refresh_group_key().unwrap();
        s.handle_leave(UserId(3)).unwrap();
        control.handle_leave(UserId(3)).unwrap();
        let digest_at_crash = serial::root_digest(s.tree());
        drop(s);

        let mut r =
            GroupKeyServer::recover(config, AccessControl::AllowAll, &dir, persist_config())
                .unwrap();
        assert_eq!(serial::root_digest(r.tree()), digest_at_crash);
        // The derivation-code draws are part of the deterministic key
        // stream: post-recovery packets must be byte-identical, codes
        // included, to a server that never crashed.
        let a = r.handle_join(UserId(100)).unwrap();
        let b = control.handle_join(UserId(100)).unwrap();
        assert_eq!(a.encoded, b.encoded);
        assert_eq!(a.derived[0].code, b.derived[0].code);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Derived and shipped strategies consume the key-generation stream
    /// differently, so recovering a derived WAL under a shipped config
    /// (or vice versa) would silently rebuild the wrong keys. Both
    /// directions must fail fast instead.
    #[test]
    fn recovery_rejects_strategy_flip() {
        let dir = scratch_dir();
        let config =
            ServerConfig { strategy: Strategy::Derived, rsa_bits: 512, ..ServerConfig::default() };
        let mut s = GroupKeyServer::with_persistence(
            config.clone(),
            AccessControl::AllowAll,
            &dir,
            persist_config(),
        )
        .unwrap();
        s.handle_join(UserId(1)).unwrap();
        drop(s);
        let flipped = ServerConfig { strategy: Strategy::GroupOriented, ..config };
        assert!(matches!(
            GroupKeyServer::recover(flipped, AccessControl::AllowAll, &dir, persist_config()),
            Err(RecoverError::Replay(RequestError::Internal(_)))
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let dir = scratch_dir();
        let config = ServerConfig { rsa_bits: 512, ..ServerConfig::default() };
        let mut s = GroupKeyServer::with_persistence(
            config.clone(),
            AccessControl::AllowAll,
            &dir,
            persist_config(),
        )
        .unwrap();
        s.handle_join(UserId(1)).unwrap();
        drop(s);
        let flipped = ServerConfig { strategy: Strategy::Derived, ..config };
        assert!(matches!(
            GroupKeyServer::recover(flipped, AccessControl::AllowAll, &dir, persist_config()),
            Err(RecoverError::Replay(RequestError::Internal(_)))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_rejects_wrong_seed() {
        let dir = scratch_dir();
        let config = ServerConfig { rsa_bits: 512, ..ServerConfig::default() };
        let mut s = GroupKeyServer::with_persistence(
            config.clone(),
            AccessControl::AllowAll,
            &dir,
            persist_config(),
        )
        .unwrap();
        s.handle_join(UserId(1)).unwrap();
        drop(s);
        let other = ServerConfig { seed: config.seed ^ 1, ..config };
        assert!(matches!(
            GroupKeyServer::recover(other, AccessControl::AllowAll, &dir, persist_config()),
            Err(RecoverError::SeedMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_rotation_survives_recovery() {
        let dir = scratch_dir();
        let config = ServerConfig { rsa_bits: 512, ..ServerConfig::default() };
        let acl = AccessControl::allow_list((0..40).map(UserId));
        let pcfg = PersistConfig { snapshot_every_ops: 4, ..persist_config() };
        let mut control = GroupKeyServer::new(config.clone(), acl.clone());
        let mut s =
            GroupKeyServer::with_persistence(config.clone(), acl.clone(), &dir, pcfg).unwrap();
        for i in 0..30 {
            s.handle_join(UserId(i)).unwrap();
            control.handle_join(UserId(i)).unwrap();
        }
        for i in (0..30).step_by(3) {
            s.handle_leave(UserId(i)).unwrap();
            control.handle_leave(UserId(i)).unwrap();
        }
        assert!(
            s.persistence().unwrap().epoch() > 0,
            "thresholds this low must have rotated at least once"
        );
        drop(s);

        let mut r = GroupKeyServer::recover(config, acl, &dir, pcfg).unwrap();
        assert_eq!(serial::root_digest(r.tree()), serial::root_digest(control.tree()));
        assert_eq!(r.group_size(), control.group_size());
        // The snapshotted allow-list is live again: outsiders stay out.
        assert_eq!(r.handle_join(UserId(999)).unwrap_err(), RequestError::JoinDenied(UserId(999)));
        // And continued operation still tracks the control server.
        let a = r.handle_join(UserId(0)).unwrap();
        let b = control.handle_join(UserId(0)).unwrap();
        assert_eq!(a.encoded, b.encoded);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_on_immediate_mode_rejects_batched_snapshot_config() {
        // A server snapshotted in batched mode cannot be recovered with an
        // immediate-mode config (and vice versa): the scheduler state
        // would be silently dropped.
        let dir = scratch_dir();
        let batched = ServerConfig {
            rekey: RekeyPolicy::Batched { interval_ms: 100, max_pending: 8 },
            rsa_bits: 512,
            ..ServerConfig::default()
        };
        let pcfg = PersistConfig { snapshot_every_ops: 1, ..persist_config() };
        let mut s =
            GroupKeyServer::with_persistence(batched.clone(), AccessControl::AllowAll, &dir, pcfg)
                .unwrap();
        s.enqueue_join(UserId(1)).unwrap();
        s.flush(0).unwrap();
        drop(s);
        let immediate = ServerConfig { rekey: RekeyPolicy::Immediate, ..batched };
        assert!(matches!(
            GroupKeyServer::recover(immediate, AccessControl::AllowAll, &dir, pcfg),
            Err(RecoverError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refresh_rotates_group_key_and_notifies_group() {
        let mut s = server(AuthPolicy::None, Strategy::GroupOriented);
        populate(&mut s, 8);
        let before = serial::root_digest(s.tree());
        let op = s.refresh_group_key().unwrap();
        assert_ne!(serial::root_digest(s.tree()), before);
        assert_eq!(op.packets.len(), 1);
        assert_eq!(op.packets[0].op, OpKind::Refresh);
        assert!(matches!(op.packets[0].message.recipients, Recipients::Group));
        let rec = s.stats().records().last().unwrap();
        assert_eq!(rec.kind, OpKind::Refresh);
        assert_eq!(rec.requests, 0);
    }

    #[test]
    fn refresh_on_empty_group_emits_nothing() {
        let mut s = server(AuthPolicy::None, Strategy::GroupOriented);
        let op = s.refresh_group_key().unwrap();
        assert!(op.packets.is_empty());
        assert!(op.encoded.is_empty());
    }

    /// The rekey-cost ledger keys every counter by `op="strategy:kind"`
    /// and accounts encryptions, messages, bytes, and touched tree
    /// nodes per completed operation.
    #[test]
    fn ledger_accounts_per_op_costs() {
        let mut s = server(AuthPolicy::None, Strategy::KeyOriented);
        let obs = Obs::new(kg_obs::ObsConfig::default());
        s.attach_obs(obs.clone());
        populate(&mut s, 8);
        let leave = s.handle_leave(UserId(3)).unwrap();
        s.refresh_group_key().unwrap();

        let counters: std::collections::BTreeMap<String, u64> =
            obs.counter_values().into_iter().collect();
        let get = |name: &str| counters.get(name).copied().unwrap_or(0);
        assert_eq!(get("kg_ledger_ops_total{op=\"key:join\"}"), 8);
        assert_eq!(get("kg_ledger_ops_total{op=\"key:leave\"}"), 1);
        assert_eq!(get("kg_ledger_ops_total{op=\"key:refresh\"}"), 1);
        // A key-oriented leave on a populated tree rewrites the leaf's
        // path: several messages, several encryptions, bytes on the wire.
        assert_eq!(get("kg_ledger_messages_total{op=\"key:leave\"}"), leave.encoded.len() as u64);
        assert_eq!(
            get("kg_ledger_bytes_total{op=\"key:leave\"}"),
            leave.encoded.iter().map(|e| e.len() as u64).sum::<u64>()
        );
        assert!(get("kg_ledger_encryptions_total{op=\"key:leave\"}") >= 2);
        assert!(get("kg_ledger_nodes_touched_total{op=\"key:leave\"}") >= 1);
        // Refresh: one fresh root key, one ciphertext for the group.
        assert_eq!(get("kg_ledger_encryptions_total{op=\"key:refresh\"}"), 1);
        assert_eq!(get("kg_ledger_nodes_touched_total{op=\"key:refresh\"}"), 1);
        // The generic encryption counter agrees with the ledger's total.
        let ledger_enc: u64 = counters
            .iter()
            .filter(|(k, _)| k.starts_with("kg_ledger_encryptions_total"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(get("kg_encryptions_total") + 1, ledger_enc, "refresh seal is ledger-only");
    }
}
