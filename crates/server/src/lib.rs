//! # kg-server — the prototype group key server
//!
//! The trusted entity of the paper: it owns the key tree, performs group
//! access control, processes join/leave requests, constructs rekey
//! messages under the configured strategy, authenticates them (digest,
//! per-message signature, or the Section 4 batch signature), and records
//! the statistics the evaluation tables are built from.
//!
//! [`GroupKeyServer`] is the network-free core — the benchmark harness
//! drives it directly, timing exactly what the paper timed (request
//! parsing, tree update, key generation, encryption, digest/signature,
//! message encoding). [`net::NetServer`] wraps it for operation over the
//! simulated network in `kg-net`, resolving each rekey message's
//! [`Recipients`](kg_core::rekey::Recipients) to concrete endpoints.
//!
//! ```
//! use kg_server::{GroupKeyServer, ServerConfig, AccessControl};
//! use kg_core::ids::UserId;
//!
//! // Paper defaults: degree-4 tree, group-oriented rekeying, DES-CBC.
//! let mut server = GroupKeyServer::new(ServerConfig::default(), AccessControl::AllowAll);
//! for i in 0..20 {
//!     server.handle_join(UserId(i)).unwrap();
//! }
//! let before = server.tree().group_key().0;
//! let op = server.handle_leave(UserId(7)).unwrap();
//! assert_eq!(op.packets.len(), 1, "group-oriented leave: one multicast");
//! assert!(server.tree().group_key().0.version > before.version);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod config;
pub mod net;
pub mod stats;

pub use acl::{AccessControl, AclError};
pub use config::{AuthPolicy, ConfigError, RekeyPolicy, ServerConfig};
pub use stats::{Aggregate, OpRecord, ServerStats};

use kg_batch::{BatchRekeyer, BatchScheduler};
use kg_core::ids::{KeyLabel, UserId};
use kg_core::merkle;
use kg_core::rekey::{RekeyMessage, Rekeyer};
use kg_core::tree::{KeyTree, TreeError};
use kg_crypto::drbg::HmacDrbg;
use kg_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use kg_crypto::{KeySource, SymmetricKey};
use kg_wire::{AuthTag, BatchRekeyPacket, OpKind, RekeyPacket};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Why a request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// Access control denied the join.
    JoinDenied(UserId),
    /// Tree-level membership error (duplicate join / unknown leaver).
    Tree(TreeError),
    /// A batched-mode call (`enqueue_*`) on a server configured for
    /// immediate rekeying.
    NotBatched,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::JoinDenied(u) => write!(f, "join denied for {u}"),
            RequestError::Tree(e) => write!(f, "{e}"),
            RequestError::NotBatched => {
                write!(f, "server is configured for immediate rekeying")
            }
        }
    }
}

impl std::error::Error for RequestError {}

impl From<TreeError> for RequestError {
    fn from(e: TreeError) -> Self {
        RequestError::Tree(e)
    }
}

/// Result of processing one join or leave.
#[derive(Debug, Clone)]
pub struct ProcessedOp {
    /// Sequence number assigned to this operation.
    pub seq: u64,
    /// Fully authenticated rekey packets, ready to encode and send.
    pub packets: Vec<RekeyPacket>,
    /// Encoded form of each packet (computed inside the timed section, as
    /// the paper's processing time includes message construction).
    pub encoded: Vec<Vec<u8>>,
    /// For joins: the individual key handed to the new member by the
    /// authentication exchange, plus its leaf label and the path labels
    /// (root-first) for the join-ack.
    pub join_grant: Option<JoinGrant>,
}

/// The data a joining member receives out-of-band (via the authenticated
/// admission exchange).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinGrant {
    /// The admitted user.
    pub user: UserId,
    /// Its individual key.
    pub individual_key: SymmetricKey,
    /// Label of its individual-key leaf.
    pub leaf_label: KeyLabel,
    /// Labels of the path keys, root-first (the join-ack payload).
    pub path_labels: Vec<KeyLabel>,
}

/// Result of flushing one batched rekey interval.
#[derive(Debug, Clone)]
pub struct ProcessedBatch {
    /// Interval sequence number carried by every packet.
    pub interval: u64,
    /// Fully authenticated batch rekey packets, ready to send.
    pub packets: Vec<BatchRekeyPacket>,
    /// Encoded form of each packet.
    pub encoded: Vec<Vec<u8>>,
    /// One grant per user admitted this interval (the out-of-band
    /// authentication-exchange payload, as for immediate joins).
    pub grants: Vec<JoinGrant>,
    /// Users removed this interval (excludes leave-then-rejoin pairs).
    pub departed: Vec<UserId>,
}

/// The prototype group key server.
pub struct GroupKeyServer {
    config: ServerConfig,
    acl: AccessControl,
    tree: KeyTree,
    keygen: HmacDrbg,
    ivs: HmacDrbg,
    rsa: Option<RsaKeyPair>,
    seq: u64,
    stats: ServerStats,
    /// Present iff `config.rekey` is [`RekeyPolicy::Batched`].
    scheduler: Option<BatchScheduler>,
}

impl GroupKeyServer {
    /// Create a server. Generates an RSA keypair when the auth policy
    /// requires one (key generation happens here, once — not in the timed
    /// path).
    pub fn new(config: ServerConfig, acl: AccessControl) -> Self {
        let mut keygen = HmacDrbg::from_seed(config.seed ^ 0x6b67_5f6b_6579_7321);
        let ivs = HmacDrbg::from_seed(config.seed ^ 0x6976_5f73_6565_6421);
        let rsa = config.auth.needs_signature_key().then(|| {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7273_615f_6b65_7921);
            RsaKeyPair::generate(config.rsa_bits, &mut rng).expect("RSA key generation")
        });
        let tree = KeyTree::new(config.degree, config.key_len(), &mut keygen);
        let scheduler = config.rekey.batch_policy().map(|p| BatchScheduler::new(p, 0));
        GroupKeyServer {
            config,
            acl,
            tree,
            keygen,
            ivs,
            rsa,
            seq: 0,
            stats: ServerStats::default(),
            scheduler,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The server's signature-verification key, for distribution to
    /// clients. `None` when the auth policy doesn't sign.
    pub fn public_key(&self) -> Option<&RsaPublicKey> {
        self.rsa.as_ref().map(|kp| kp.public())
    }

    /// Current group size.
    pub fn group_size(&self) -> usize {
        self.tree.user_count()
    }

    /// Whether `u` is a member.
    pub fn is_member(&self, u: UserId) -> bool {
        self.tree.is_member(u)
    }

    /// Read access to the key tree (recipient resolution, tests).
    pub fn tree(&self) -> &KeyTree {
        &self.tree
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Clear statistics (after initial population, as in §5).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Switch the authentication policy at runtime.
    ///
    /// The experiment harness populates the initial group with
    /// authentication off (the paper excludes the n initial joins from
    /// every measurement) and then enables the configured policy for the
    /// measured phase.
    ///
    /// # Panics
    /// Panics when switching to a signing policy on a server constructed
    /// without one (no RSA keypair was generated).
    pub fn set_auth(&mut self, auth: AuthPolicy) {
        assert!(
            !auth.needs_signature_key() || self.rsa.is_some(),
            "server was built without a signature keypair"
        );
        self.config.auth = auth;
    }

    /// Process a join request.
    ///
    /// The authentication exchange (modelled by generating the individual
    /// key) happens *before* the timer starts: "the processing time for a
    /// join request does not include any time used to authenticate the
    /// requesting user" (§5).
    pub fn handle_join(&mut self, user: UserId) -> Result<ProcessedOp, RequestError> {
        if !self.acl.permits(user) {
            return Err(RequestError::JoinDenied(user));
        }
        if self.tree.is_member(user) {
            return Err(RequestError::Tree(TreeError::AlreadyMember(user)));
        }
        let individual_key = self.keygen.generate_key(self.config.key_len());

        let start = Instant::now();
        let event = self.tree.join(user, individual_key.clone(), &mut self.keygen)?;
        let mut rekeyer = Rekeyer::new(self.config.cipher, &mut self.ivs);
        let out = rekeyer.join(&event, self.config.strategy);
        let seq = self.next_seq();
        let (packets, encoded, signatures) =
            self.authenticate_and_encode(seq, OpKind::Join, out.messages);
        let proc_ns = start.elapsed().as_nanos() as u64;

        self.stats.push(OpRecord {
            kind: OpKind::Join,
            requests: 1,
            msg_sizes: encoded.iter().map(|e| e.len() as u32).collect(),
            proc_ns,
            encryptions: out.ops.key_encryptions,
            signatures,
        });
        Ok(ProcessedOp {
            seq,
            packets,
            encoded,
            join_grant: Some(JoinGrant {
                user,
                individual_key,
                leaf_label: event.leaf_label,
                path_labels: event.path.iter().map(|p| p.label).collect(),
            }),
        })
    }

    /// Process a leave request.
    pub fn handle_leave(&mut self, user: UserId) -> Result<ProcessedOp, RequestError> {
        if !self.tree.is_member(user) {
            return Err(RequestError::Tree(TreeError::NotAMember(user)));
        }
        let start = Instant::now();
        let event = self.tree.leave(user, &mut self.keygen)?;
        let mut rekeyer = Rekeyer::new(self.config.cipher, &mut self.ivs);
        let out = rekeyer.leave(&event, self.config.strategy);
        let seq = self.next_seq();
        let (packets, encoded, signatures) =
            self.authenticate_and_encode(seq, OpKind::Leave, out.messages);
        let proc_ns = start.elapsed().as_nanos() as u64;

        self.stats.push(OpRecord {
            kind: OpKind::Leave,
            requests: 1,
            msg_sizes: encoded.iter().map(|e| e.len() as u32).collect(),
            proc_ns,
            encryptions: out.ops.key_encryptions,
            signatures,
        });
        Ok(ProcessedOp { seq, packets, encoded, join_grant: None })
    }

    /// Whether this server batches rekeys.
    pub fn is_batched(&self) -> bool {
        self.scheduler.is_some()
    }

    /// Requests queued for the next interval (0 in immediate mode).
    pub fn pending_requests(&self) -> usize {
        self.scheduler.as_ref().map_or(0, |s| s.pending())
    }

    /// Queue a join for the next rekey interval (batched mode only).
    ///
    /// Access control and membership are checked here, at admission time;
    /// the individual key is generated now and handed out with the grant
    /// when the interval flushes. Joining while a leave for the same user
    /// is queued is allowed (leave-then-rejoin within one interval).
    pub fn enqueue_join(&mut self, user: UserId) -> Result<(), RequestError> {
        if self.scheduler.is_none() {
            return Err(RequestError::NotBatched);
        }
        if !self.acl.permits(user) {
            return Err(RequestError::JoinDenied(user));
        }
        let sched = self.scheduler.as_ref().expect("checked above");
        if self.tree.is_member(user) && !sched.has_pending_leave(user) {
            return Err(RequestError::Tree(TreeError::AlreadyMember(user)));
        }
        let individual_key = self.keygen.generate_key(self.config.key_len());
        self.scheduler
            .as_mut()
            .expect("checked above")
            .enqueue_join(user, individual_key);
        Ok(())
    }

    /// Queue a leave for the next rekey interval (batched mode only).
    ///
    /// A leave for a user whose join is still queued cancels that join.
    pub fn enqueue_leave(&mut self, user: UserId) -> Result<(), RequestError> {
        let Some(sched) = self.scheduler.as_mut() else {
            return Err(RequestError::NotBatched);
        };
        if !self.tree.is_member(user) && !sched.has_pending_join(user) {
            return Err(RequestError::Tree(TreeError::NotAMember(user)));
        }
        sched.enqueue_leave(user);
        Ok(())
    }

    /// Flush the pending interval if the schedule says so (interval
    /// elapsed or queue depth reached). `Ok(None)` when there is nothing
    /// to do — including on an immediate-mode server, so drivers can tick
    /// unconditionally.
    pub fn tick(&mut self, now_ms: u64) -> Result<Option<ProcessedBatch>, RequestError> {
        let Some(sched) = self.scheduler.as_mut() else { return Ok(None) };
        match sched.poll(now_ms) {
            None => Ok(None),
            Some(pending) => self.process_batch(pending).map(Some),
        }
    }

    /// Flush the pending interval unconditionally (tests, shutdown).
    pub fn flush(&mut self, now_ms: u64) -> Result<Option<ProcessedBatch>, RequestError> {
        let Some(sched) = self.scheduler.as_mut() else { return Ok(None) };
        match sched.take(now_ms) {
            None => Ok(None),
            Some(pending) => self.process_batch(pending).map(Some),
        }
    }

    /// Apply one interval's queued requests: mark + replace the union of
    /// the changed paths once, build the consolidated rekey messages,
    /// authenticate, encode, and record one per-interval stats record.
    fn process_batch(
        &mut self,
        pending: kg_batch::PendingBatch,
    ) -> Result<ProcessedBatch, RequestError> {
        let n_joins = pending.joins.len() as u32;
        let n_leaves = pending.leaves.len() as u32;
        let start = Instant::now();
        let ev = self.tree.apply_batch(&pending.joins, &pending.leaves, &mut self.keygen)?;
        let mut rekeyer = BatchRekeyer::new(self.config.cipher, &mut self.ivs);
        let out = rekeyer.rekey(&ev, self.config.strategy);
        let timestamp_ms = self.next_seq(); // keep the logical clock shared
        let (packets, encoded, signatures) = self.authenticate_and_encode_batch(
            pending.interval,
            timestamp_ms,
            n_joins,
            n_leaves,
            out.messages,
        );
        let proc_ns = start.elapsed().as_nanos() as u64;

        self.stats.push(OpRecord {
            kind: OpKind::Batch,
            requests: n_joins + n_leaves,
            msg_sizes: encoded.iter().map(|e| e.len() as u32).collect(),
            proc_ns,
            encryptions: out.ops.key_encryptions,
            signatures,
        });
        let grants = ev
            .joins
            .iter()
            .map(|j| JoinGrant {
                user: j.user,
                individual_key: j.leaf_key.clone(),
                leaf_label: j.leaf_label,
                path_labels: j.path.iter().map(|(r, _)| r.label).collect(),
            })
            .collect();
        // Core-level `departed` lists every leaver, including users who
        // rejoined in the same interval; the server view keeps only true
        // departures (a rejoiner keeps its endpoint and gets a new grant).
        let departed =
            ev.departed.into_iter().filter(|&u| !self.tree.is_member(u)).collect();
        Ok(ProcessedBatch {
            interval: pending.interval,
            packets,
            encoded,
            grants,
            departed,
        })
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Attach the configured authenticity tag to every message and encode.
    /// Returns (packets, encodings, signature-op count).
    fn authenticate_and_encode(
        &mut self,
        seq: u64,
        op: OpKind,
        messages: Vec<RekeyMessage>,
    ) -> (Vec<RekeyPacket>, Vec<Vec<u8>>, u64) {
        let timestamp_ms = seq; // deterministic logical timestamp
        let mut packets: Vec<RekeyPacket> = messages
            .into_iter()
            .map(|message| RekeyPacket { seq, op, timestamp_ms, message, auth: AuthTag::None })
            .collect();
        let mut signatures = 0u64;
        match self.config.auth {
            AuthPolicy::None => {}
            AuthPolicy::Digest => {
                for p in &mut packets {
                    let body = p.encode_body();
                    p.auth = AuthTag::Digest(self.config.digest.hash(&body));
                }
            }
            AuthPolicy::SignEach => {
                let key = self.rsa.as_ref().expect("policy requires key").private.clone();
                for p in &mut packets {
                    let body = p.encode_body();
                    let sig = key.sign(self.config.digest, &body).expect("signing");
                    signatures += 1;
                    p.auth = AuthTag::Signed { signature: sig };
                }
            }
            AuthPolicy::SignBatch => {
                if !packets.is_empty() {
                    let key = self.rsa.as_ref().expect("policy requires key").private.clone();
                    let bodies: Vec<Vec<u8>> = packets.iter().map(|p| p.encode_body()).collect();
                    let refs: Vec<&[u8]> = bodies.iter().map(|b| b.as_slice()).collect();
                    let batch =
                        merkle::sign_batch(&key, self.config.digest, &refs).expect("batch signing");
                    signatures += 1;
                    for (p, path) in packets.iter_mut().zip(batch.paths) {
                        p.auth = AuthTag::MerkleSigned {
                            root_signature: batch.root_signature.clone(),
                            path,
                        };
                    }
                }
            }
        }
        let encoded: Vec<Vec<u8>> = packets.iter().map(|p| p.encode()).collect();
        (packets, encoded, signatures)
    }

    /// [`Self::authenticate_and_encode`] for an interval's batch packets.
    fn authenticate_and_encode_batch(
        &mut self,
        interval: u64,
        timestamp_ms: u64,
        joins: u32,
        leaves: u32,
        messages: Vec<RekeyMessage>,
    ) -> (Vec<BatchRekeyPacket>, Vec<Vec<u8>>, u64) {
        let mut packets: Vec<BatchRekeyPacket> = messages
            .into_iter()
            .map(|message| BatchRekeyPacket {
                interval,
                timestamp_ms,
                joins,
                leaves,
                message,
                auth: AuthTag::None,
            })
            .collect();
        let mut signatures = 0u64;
        match self.config.auth {
            AuthPolicy::None => {}
            AuthPolicy::Digest => {
                for p in &mut packets {
                    let body = p.encode_body();
                    p.auth = AuthTag::Digest(self.config.digest.hash(&body));
                }
            }
            AuthPolicy::SignEach => {
                let key = self.rsa.as_ref().expect("policy requires key").private.clone();
                for p in &mut packets {
                    let body = p.encode_body();
                    let sig = key.sign(self.config.digest, &body).expect("signing");
                    signatures += 1;
                    p.auth = AuthTag::Signed { signature: sig };
                }
            }
            AuthPolicy::SignBatch => {
                if !packets.is_empty() {
                    let key = self.rsa.as_ref().expect("policy requires key").private.clone();
                    let bodies: Vec<Vec<u8>> = packets.iter().map(|p| p.encode_body()).collect();
                    let refs: Vec<&[u8]> = bodies.iter().map(|b| b.as_slice()).collect();
                    let batch =
                        merkle::sign_batch(&key, self.config.digest, &refs).expect("batch signing");
                    signatures += 1;
                    for (p, path) in packets.iter_mut().zip(batch.paths) {
                        p.auth = AuthTag::MerkleSigned {
                            root_signature: batch.root_signature.clone(),
                            path,
                        };
                    }
                }
            }
        }
        let encoded: Vec<Vec<u8>> = packets.iter().map(|p| p.encode()).collect();
        (packets, encoded, signatures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::rekey::{Recipients, Strategy};

    fn server(auth: AuthPolicy, strategy: Strategy) -> GroupKeyServer {
        let config = ServerConfig { auth, strategy, rsa_bits: 512, ..ServerConfig::default() };
        GroupKeyServer::new(config, AccessControl::AllowAll)
    }

    fn populate(s: &mut GroupKeyServer, n: u64) {
        for i in 0..n {
            s.handle_join(UserId(i)).unwrap();
        }
    }

    #[test]
    fn join_produces_grant_and_packets() {
        let mut s = server(AuthPolicy::None, Strategy::GroupOriented);
        populate(&mut s, 8);
        let op = s.handle_join(UserId(100)).unwrap();
        let grant = op.join_grant.as_ref().unwrap();
        assert_eq!(grant.user, UserId(100));
        assert!(!grant.path_labels.is_empty());
        assert_eq!(op.packets.len(), 2); // group multicast + joiner unicast
        assert_eq!(op.packets.len(), op.encoded.len());
        assert_eq!(s.group_size(), 9);
    }

    #[test]
    fn leave_requires_membership() {
        let mut s = server(AuthPolicy::None, Strategy::GroupOriented);
        populate(&mut s, 4);
        assert!(matches!(
            s.handle_leave(UserId(999)).unwrap_err(),
            RequestError::Tree(TreeError::NotAMember(_))
        ));
        s.handle_leave(UserId(2)).unwrap();
        assert_eq!(s.group_size(), 3);
        assert!(!s.is_member(UserId(2)));
    }

    #[test]
    fn acl_denies_join() {
        let config = ServerConfig::default();
        let mut s = GroupKeyServer::new(config, AccessControl::allow_list([UserId(1)]));
        assert!(s.handle_join(UserId(1)).is_ok());
        assert_eq!(
            s.handle_join(UserId(2)).unwrap_err(),
            RequestError::JoinDenied(UserId(2))
        );
    }

    #[test]
    fn duplicate_join_rejected() {
        let mut s = server(AuthPolicy::None, Strategy::GroupOriented);
        s.handle_join(UserId(5)).unwrap();
        assert!(matches!(
            s.handle_join(UserId(5)).unwrap_err(),
            RequestError::Tree(TreeError::AlreadyMember(_))
        ));
    }

    #[test]
    fn digest_policy_attaches_valid_digest() {
        let mut s = server(AuthPolicy::Digest, Strategy::GroupOriented);
        populate(&mut s, 4);
        let op = s.handle_join(UserId(9)).unwrap();
        for (p, enc) in op.packets.iter().zip(&op.encoded) {
            let AuthTag::Digest(d) = &p.auth else { panic!("expected digest") };
            let (decoded, body_len) = RekeyPacket::decode(enc).unwrap();
            assert_eq!(d, &s.config().digest.hash(&enc[..body_len]));
            assert_eq!(&decoded, p);
        }
    }

    #[test]
    fn sign_each_produces_verifiable_signatures() {
        let mut s = server(AuthPolicy::SignEach, Strategy::KeyOriented);
        populate(&mut s, 8);
        let op = s.handle_leave(UserId(3)).unwrap();
        let pk = s.public_key().unwrap();
        let mut count = 0;
        for (p, enc) in op.packets.iter().zip(&op.encoded) {
            let AuthTag::Signed { signature } = &p.auth else { panic!("expected signature") };
            let (_, body_len) = RekeyPacket::decode(enc).unwrap();
            pk.verify(s.config().digest, &enc[..body_len], signature).unwrap();
            count += 1;
        }
        assert!(count > 1, "key-oriented leave sends several messages");
        let rec = s.stats().records().last().unwrap();
        assert_eq!(rec.signatures, count as u64);
    }

    #[test]
    fn sign_batch_uses_one_signature_for_all_messages() {
        let mut s = server(AuthPolicy::SignBatch, Strategy::KeyOriented);
        populate(&mut s, 16);
        let op = s.handle_leave(UserId(7)).unwrap();
        let pk = s.public_key().unwrap();
        assert!(op.packets.len() > 1);
        let mut roots = std::collections::BTreeSet::new();
        for (p, enc) in op.packets.iter().zip(&op.encoded) {
            let AuthTag::MerkleSigned { root_signature, path } = &p.auth else {
                panic!("expected merkle")
            };
            roots.insert(root_signature.clone());
            let (_, body_len) = RekeyPacket::decode(enc).unwrap();
            merkle::verify_message(pk, s.config().digest, &enc[..body_len], path, root_signature)
                .unwrap();
        }
        assert_eq!(roots.len(), 1, "single signature shared by the batch");
        let rec = s.stats().records().last().unwrap();
        assert_eq!(rec.signatures, 1);
    }

    #[test]
    fn stats_track_sizes_and_encryptions() {
        let mut s = server(AuthPolicy::None, Strategy::GroupOriented);
        populate(&mut s, 64);
        s.reset_stats();
        s.handle_join(UserId(200)).unwrap();
        s.handle_leave(UserId(200)).unwrap();
        let agg = s.stats().aggregate(None).unwrap();
        assert_eq!(agg.ops, 2);
        assert!(agg.msg_size_ave > 0.0);
        assert!(agg.encryptions_ave > 0.0);
        let join = s.stats().aggregate(Some(OpKind::Join)).unwrap();
        let leave = s.stats().aggregate(Some(OpKind::Leave)).unwrap();
        // Group-oriented: join sends 2 messages, leave sends 1.
        assert_eq!(join.msgs_per_op, 2.0);
        assert_eq!(leave.msgs_per_op, 1.0);
        // Leave encrypts ~d(h−1), join 2(h−1)+(h−1); comparable magnitudes.
        assert!(leave.encryptions_ave > join.encryptions_ave / 2.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let config = ServerConfig { seed, ..ServerConfig::default() };
            let mut s = GroupKeyServer::new(config, AccessControl::AllowAll);
            populate(&mut s, 10);
            let op = s.handle_leave(UserId(4)).unwrap();
            op.encoded.clone()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn last_member_leave_sends_nothing() {
        let mut s = server(AuthPolicy::SignBatch, Strategy::GroupOriented);
        s.handle_join(UserId(1)).unwrap();
        let op = s.handle_leave(UserId(1)).unwrap();
        assert!(op.packets.is_empty());
        assert_eq!(s.group_size(), 0);
        let rec = s.stats().records().last().unwrap();
        assert_eq!(rec.signatures, 0);
    }

    fn batched_server(strategy: Strategy, interval_ms: u64, max_pending: usize) -> GroupKeyServer {
        let config = ServerConfig {
            strategy,
            rekey: crate::RekeyPolicy::Batched { interval_ms, max_pending },
            ..ServerConfig::default()
        };
        GroupKeyServer::new(config, AccessControl::AllowAll)
    }

    /// Immediate-mode populate is unavailable in batched mode; seed the
    /// group through one big interval instead.
    fn populate_batched(s: &mut GroupKeyServer, n: u64, now_ms: u64) {
        for i in 0..n {
            s.enqueue_join(UserId(i)).unwrap();
        }
        s.flush(now_ms).unwrap().unwrap();
    }

    #[test]
    fn batched_interval_flushes_on_time_not_before() {
        let mut s = batched_server(Strategy::GroupOriented, 100, 1000);
        populate_batched(&mut s, 16, 0);
        s.enqueue_join(UserId(100)).unwrap();
        s.enqueue_leave(UserId(3)).unwrap();
        assert_eq!(s.pending_requests(), 2);
        assert!(s.tick(50).unwrap().is_none(), "interval not yet elapsed");
        let batch = s.tick(100).unwrap().expect("interval elapsed");
        assert_eq!(batch.interval, 2);
        assert_eq!(batch.grants.len(), 1);
        assert_eq!(batch.grants[0].user, UserId(100));
        assert_eq!(batch.departed, vec![UserId(3)]);
        assert!(!batch.packets.is_empty());
        assert!(s.is_member(UserId(100)));
        assert!(!s.is_member(UserId(3)));
        // One per-interval stats record covering both requests.
        let rec = s.stats().records().last().unwrap();
        assert_eq!(rec.kind, OpKind::Batch);
        assert_eq!(rec.requests, 2);
        assert!(rec.encryptions > 0);
    }

    #[test]
    fn batched_queue_depth_forces_early_flush() {
        let mut s = batched_server(Strategy::GroupOriented, 1_000_000, 4);
        populate_batched(&mut s, 8, 0);
        for i in 100..103 {
            s.enqueue_join(UserId(i)).unwrap();
        }
        assert!(s.tick(1).unwrap().is_none());
        s.enqueue_join(UserId(103)).unwrap();
        let batch = s.tick(1).unwrap().expect("depth threshold");
        assert_eq!(batch.grants.len(), 4);
        assert_eq!(s.group_size(), 12);
    }

    #[test]
    fn batched_mode_validates_at_enqueue_time() {
        let mut s = batched_server(Strategy::GroupOriented, 100, 100);
        populate_batched(&mut s, 4, 0);
        assert!(matches!(
            s.enqueue_join(UserId(2)).unwrap_err(),
            RequestError::Tree(TreeError::AlreadyMember(_))
        ));
        assert!(matches!(
            s.enqueue_leave(UserId(77)).unwrap_err(),
            RequestError::Tree(TreeError::NotAMember(_))
        ));
        // Leave-then-rejoin within one interval is allowed.
        s.enqueue_leave(UserId(2)).unwrap();
        s.enqueue_join(UserId(2)).unwrap();
        let batch = s.flush(10).unwrap().unwrap();
        assert_eq!(batch.grants.len(), 1);
        assert!(batch.departed.is_empty(), "rejoin is not a departure");
        assert!(s.is_member(UserId(2)));
    }

    #[test]
    fn batched_acl_denial_happens_at_enqueue() {
        let config = ServerConfig {
            rekey: crate::RekeyPolicy::Batched { interval_ms: 10, max_pending: 10 },
            ..ServerConfig::default()
        };
        let mut s = GroupKeyServer::new(config, AccessControl::allow_list([UserId(1)]));
        s.enqueue_join(UserId(1)).unwrap();
        assert_eq!(s.enqueue_join(UserId(2)).unwrap_err(), RequestError::JoinDenied(UserId(2)));
        let batch = s.flush(0).unwrap().unwrap();
        assert_eq!(batch.grants.len(), 1);
    }

    #[test]
    fn enqueue_requires_batched_mode_and_tick_is_harmless() {
        let mut s = server(AuthPolicy::None, Strategy::GroupOriented);
        assert!(!s.is_batched());
        assert_eq!(s.enqueue_join(UserId(1)).unwrap_err(), RequestError::NotBatched);
        assert_eq!(s.enqueue_leave(UserId(1)).unwrap_err(), RequestError::NotBatched);
        assert!(s.tick(1_000).unwrap().is_none());
        assert!(s.flush(1_000).unwrap().is_none());
    }

    #[test]
    fn batch_packets_carry_auth_under_every_policy() {
        for auth in [AuthPolicy::Digest, AuthPolicy::SignEach, AuthPolicy::SignBatch] {
            let config = ServerConfig {
                auth,
                rekey: crate::RekeyPolicy::Batched { interval_ms: 10, max_pending: 1000 },
                rsa_bits: 512,
                ..ServerConfig::default()
            };
            let mut s = GroupKeyServer::new(config, AccessControl::AllowAll);
            populate_batched(&mut s, 12, 0);
            for i in 100..104 {
                s.enqueue_join(UserId(i)).unwrap();
            }
            s.enqueue_leave(UserId(5)).unwrap();
            let batch = s.flush(10).unwrap().unwrap();
            for (p, enc) in batch.packets.iter().zip(&batch.encoded) {
                let (decoded, body_len) = kg_wire::BatchRekeyPacket::decode(enc).unwrap();
                assert_eq!(&decoded, p);
                match (&p.auth, auth) {
                    (AuthTag::Digest(d), AuthPolicy::Digest) => {
                        assert_eq!(d, &s.config().digest.hash(&enc[..body_len]));
                    }
                    (AuthTag::Signed { signature }, AuthPolicy::SignEach) => {
                        s.public_key()
                            .unwrap()
                            .verify(s.config().digest, &enc[..body_len], signature)
                            .unwrap();
                    }
                    (AuthTag::MerkleSigned { root_signature, path }, AuthPolicy::SignBatch) => {
                        merkle::verify_message(
                            s.public_key().unwrap(),
                            s.config().digest,
                            &enc[..body_len],
                            path,
                            root_signature,
                        )
                        .unwrap();
                    }
                    (tag, policy) => panic!("unexpected tag {tag:?} under {policy:?}"),
                }
            }
        }
    }

    #[test]
    fn recipients_cover_all_members_for_each_strategy() {
        for strategy in Strategy::ALL {
            let mut s = server(AuthPolicy::None, strategy);
            populate(&mut s, 27);
            let op = s.handle_leave(UserId(13)).unwrap();
            // Union of resolved recipient sets must equal the remaining
            // membership.
            let mut covered = std::collections::BTreeSet::new();
            for p in &op.packets {
                let users: Vec<UserId> = match &p.message.recipients {
                    Recipients::User(u) => vec![*u],
                    Recipients::Subgroup(l) => s.tree().userset(*l),
                    Recipients::SubgroupExcept { include, exclude } => {
                        s.tree().userset_except(*include, *exclude)
                    }
                    Recipients::Group => s.tree().members().collect(),
                };
                covered.extend(users);
            }
            let members: std::collections::BTreeSet<UserId> = s.tree().members().collect();
            assert_eq!(covered, members, "strategy {strategy:?}");
        }
    }
}
