//! The group key server attached to the simulated network.
//!
//! [`NetServer`] owns a [`GroupKeyServer`] plus an endpoint on any
//! [`Transport`] (the deterministic simulator in tests, real UDP in the
//! cluster binaries): it parses inbound `join`/`leave` control datagrams,
//! authenticates leave requests (HMAC under the member's individual key,
//! standing in for the paper's `{leave-request}_{k_u}`), runs the key
//! management, and dispatches the resulting rekey packets — group
//! multicast for `Recipients::Group`, subgroup delivery for the
//! subtree-scoped messages, unicast for the joiner.

use crate::{GroupKeyServer, JoinGrant, RequestError};
use bytes::Bytes;
use kg_core::ids::UserId;
use kg_core::rekey::Recipients;
use kg_crypto::hmac::{hmac, verify_mac};
use kg_crypto::md5::Md5;
use kg_net::{EndpointId, MulticastAddr, Transport};
use kg_wire::ControlMessage;
use std::collections::BTreeMap;

/// Events surfaced to the driver after a poll step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerEvent {
    /// A join was granted; the grant carries the individual key that the
    /// (simulated) authentication exchange delivers to the new member.
    Joined(JoinGrant),
    /// A leave was granted.
    Left(UserId),
    /// A request was rejected.
    Rejected(UserId, RequestError),
    /// Batched mode: a request passed validation and was queued for the
    /// next rekey interval (the grant/ack follows at flush time).
    Queued(UserId),
    /// Batched mode: an interval flushed and its rekey traffic was sent.
    Flushed {
        /// The interval's sequence number.
        interval: u64,
        /// Users admitted by this interval.
        joined: usize,
        /// Users removed by this interval.
        left: usize,
    },
    /// An inbound datagram failed to decode as a control message and was
    /// dropped (stray traffic, corruption). The server keeps running.
    BadDatagram {
        /// Claimed sender endpoint.
        from: EndpointId,
        /// Why decoding failed.
        error: kg_wire::WireError,
    },
    /// The interval flush failed. With persistence attached this means the
    /// write-ahead log could not be appended — see
    /// [`RequestError::Persist`] for the contract.
    FlushFailed(RequestError),
}

/// The networked server.
pub struct NetServer {
    inner: GroupKeyServer,
    endpoint: EndpointId,
    group_addr: MulticastAddr,
    members: BTreeMap<UserId, EndpointId>,
    /// Batched mode: endpoints of users whose join is queued but not yet
    /// flushed (they only enter `members` once admitted).
    pending_eps: BTreeMap<UserId, EndpointId>,
}

impl NetServer {
    /// Attach `server` to the network.
    pub fn new<T: Transport>(server: GroupKeyServer, net: &mut T) -> Self {
        let endpoint = net.endpoint();
        let group_addr = net.multicast_group();
        NetServer {
            inner: server,
            endpoint,
            group_addr,
            members: BTreeMap::new(),
            pending_eps: BTreeMap::new(),
        }
    }

    /// Re-attach a server to an existing endpoint and multicast address —
    /// crash recovery: the process restarts (typically via
    /// [`GroupKeyServer::recover`]) and the host keeps its network
    /// identity. `directory` re-supplies the user-to-endpoint map the dead
    /// process lost; entries are sorted into admitted members and
    /// still-queued joiners against the recovered state, and anything the
    /// server does not know is ignored.
    pub fn resume<T: Transport>(
        server: GroupKeyServer,
        net: &mut T,
        endpoint: EndpointId,
        group_addr: MulticastAddr,
        directory: impl IntoIterator<Item = (UserId, EndpointId)>,
    ) -> Self {
        let mut members = BTreeMap::new();
        let mut pending_eps = BTreeMap::new();
        for (user, ep) in directory {
            if server.is_member(user) {
                // Idempotent: the routers kept the subscription across
                // the crash, but a rebuilt network would not have.
                net.join_group(group_addr, ep);
                members.insert(user, ep);
            } else if server.has_pending_join(user) {
                pending_eps.insert(user, ep);
            }
        }
        NetServer { inner: server, endpoint, group_addr, members, pending_eps }
    }

    /// The server's network endpoint (clients send requests here).
    pub fn endpoint(&self) -> EndpointId {
        self.endpoint
    }

    /// The current user-to-endpoint directory: admitted members plus users
    /// whose join is queued for the next interval. Drivers snapshot this
    /// to re-seed [`NetServer::resume`] after a crash.
    pub fn directory(&self) -> Vec<(UserId, EndpointId)> {
        self.members.iter().chain(self.pending_eps.iter()).map(|(&u, &ep)| (u, ep)).collect()
    }

    /// The all-members multicast address.
    pub fn group_addr(&self) -> MulticastAddr {
        self.group_addr
    }

    /// The wrapped server.
    pub fn inner(&self) -> &GroupKeyServer {
        &self.inner
    }

    /// Mutable access (stats reset between experiment phases).
    pub fn inner_mut(&mut self) -> &mut GroupKeyServer {
        &mut self.inner
    }

    /// Drain the server's inbox, process every request, send responses and
    /// rekey traffic. Returns the processed events in order.
    pub fn poll<T: Transport>(&mut self, net: &mut T) -> Vec<ServerEvent> {
        let mut events = Vec::new();
        while let Some(dg) = net.recv(self.endpoint) {
            let decoded = {
                let _s = self.inner.obs().span("parse");
                ControlMessage::decode(&dg.payload)
            };
            let msg = match decoded {
                Ok(msg) => msg,
                Err(error) => {
                    // Garbage datagram: drop it as a UDP server must, but
                    // surface the typed decode error to the driver.
                    self.inner.obs().event(kg_obs::ObsEvent::BadDatagram {
                        from: dg.from.0 as u64,
                        error: error.to_string(),
                    });
                    events.push(ServerEvent::BadDatagram { from: dg.from, error });
                    continue;
                }
            };
            match msg {
                ControlMessage::JoinRequest { user } => {
                    let ev = if self.inner.is_batched() {
                        self.queue_join(net, user, dg.from)
                    } else {
                        self.process_join(net, user, dg.from)
                    };
                    events.push(ev);
                }
                ControlMessage::LeaveRequest { user, auth } => {
                    let ev = if self.inner.is_batched() {
                        self.queue_leave(net, user, dg.from, &auth)
                    } else {
                        self.process_leave(net, user, dg.from, &auth)
                    };
                    events.push(ev);
                }
                _ => {} // server-to-client messages are ignored if echoed back
            }
        }
        events
    }

    /// Batched mode: drain the inbox (queueing requests), then flush the
    /// rekey interval if its schedule says so, dispatching the interval's
    /// acks and batch rekey packets. In immediate mode this is equivalent
    /// to [`Self::poll`]. Drivers call it from their clock loop.
    pub fn tick<T: Transport>(&mut self, net: &mut T, now_ms: u64) -> Vec<ServerEvent> {
        let mut events = self.poll(net);
        match self.inner.tick(now_ms) {
            Ok(None) => {}
            Ok(Some(batch)) => events.extend(self.dispatch_batch(net, batch)),
            // Enqueue-time validation makes tree errors unreachable here,
            // but the write-ahead log can genuinely fail; either way the
            // driver decides, the server does not crash.
            Err(e) => {
                self.inner.obs().event(kg_obs::ObsEvent::FlushFailed { error: e.to_string() });
                events.push(ServerEvent::FlushFailed(e));
            }
        }
        events
    }

    /// Graceful shutdown: flush the pending interval via
    /// [`GroupKeyServer::shutdown`] (final snapshot + fsync) and dispatch
    /// the closing batch's acks and rekey traffic, so nothing queued is
    /// lost when the process exits. A restart via
    /// [`NetServer::resume`] then recovers with zero WAL replay.
    pub fn shutdown<T: Transport>(&mut self, net: &mut T, now_ms: u64) -> Vec<ServerEvent> {
        let mut events = self.poll(net);
        match self.inner.shutdown(now_ms) {
            Ok(None) => {}
            Ok(Some(batch)) => events.extend(self.dispatch_batch(net, batch)),
            Err(e) => {
                self.inner.obs().event(kg_obs::ObsEvent::FlushFailed { error: e.to_string() });
                events.push(ServerEvent::FlushFailed(e));
            }
        }
        events
    }

    fn queue_join<T: Transport>(
        &mut self,
        net: &mut T,
        user: UserId,
        from: EndpointId,
    ) -> ServerEvent {
        match self.inner.enqueue_join(user) {
            Err(e) => {
                let deny = ControlMessage::JoinDenied { user }.encode();
                net.send_unicast(self.endpoint, from, Bytes::from(deny));
                ServerEvent::Rejected(user, e)
            }
            Ok(()) => {
                self.pending_eps.insert(user, from);
                ServerEvent::Queued(user)
            }
        }
    }

    fn queue_leave<T: Transport>(
        &mut self,
        net: &mut T,
        user: UserId,
        from: EndpointId,
        auth: &[u8],
    ) -> ServerEvent {
        let authentic = self
            .inner
            .tree()
            .keyset(user)
            .and_then(|ks| ks.first().cloned())
            .map(|(_, ik)| verify_mac(&hmac::<Md5>(ik.material(), &user.0.to_be_bytes()), auth))
            .unwrap_or(false);
        let result = if authentic {
            self.inner.enqueue_leave(user)
        } else {
            Err(RequestError::Tree(kg_core::tree::TreeError::NotAMember(user)))
        };
        match result {
            Err(e) => {
                let deny = ControlMessage::LeaveDenied { user }.encode();
                net.send_unicast(self.endpoint, from, Bytes::from(deny));
                ServerEvent::Rejected(user, e)
            }
            Ok(()) => ServerEvent::Queued(user),
        }
    }

    /// Deliver one flushed interval: admit joiners, evict the departed,
    /// send acks, then the batch rekey packets.
    fn dispatch_batch<T: Transport>(
        &mut self,
        net: &mut T,
        batch: crate::ProcessedBatch,
    ) -> Vec<ServerEvent> {
        let mut events = Vec::new();
        // Evict the departed from delivery structures *before* any rekey
        // traffic is sent, acking their leave on the way out.
        for &user in &batch.departed {
            if let Some(ep) = self.members.remove(&user) {
                net.leave_group(self.group_addr, ep);
                let ack = ControlMessage::LeaveGranted { user }.encode();
                net.send_unicast(self.endpoint, ep, Bytes::from(ack));
            }
            events.push(ServerEvent::Left(user));
        }
        // Admit joiners (a rejoiner's entry is overwritten with its new
        // endpoint) and ack with the labels the grant describes.
        for grant in &batch.grants {
            let Some(ep) = self.pending_eps.remove(&grant.user) else { continue };
            self.members.insert(grant.user, ep);
            net.join_group(self.group_addr, ep);
            let ack = ControlMessage::JoinGranted {
                user: grant.user,
                leaf_label: grant.leaf_label,
                path_labels: grant.path_labels.clone(),
            }
            .encode();
            net.send_unicast(self.endpoint, ep, Bytes::from(ack));
            events.push(ServerEvent::Joined(grant.clone()));
        }
        for (recipients, bytes) in batch.frames() {
            self.send_to_recipients(net, &recipients, bytes);
        }
        events.push(ServerEvent::Flushed {
            interval: batch.interval,
            joined: batch.grants.len(),
            left: batch.departed.len(),
        });
        events
    }

    fn process_join<T: Transport>(
        &mut self,
        net: &mut T,
        user: UserId,
        from: EndpointId,
    ) -> ServerEvent {
        match self.inner.handle_join(user) {
            Err(e) => {
                let deny = ControlMessage::JoinDenied { user }.encode();
                net.send_unicast(self.endpoint, from, Bytes::from(deny));
                ServerEvent::Rejected(user, e)
            }
            Ok(op) => {
                let Some(grant) = op.join_grant.clone() else {
                    // handle_join always attaches a grant; if that ever
                    // breaks, deny rather than panic on a network request.
                    let deny = ControlMessage::JoinDenied { user }.encode();
                    net.send_unicast(self.endpoint, from, Bytes::from(deny));
                    return ServerEvent::Rejected(
                        user,
                        RequestError::Internal("join produced no grant"),
                    );
                };
                self.members.insert(user, from);
                net.join_group(self.group_addr, from);
                let ack = ControlMessage::JoinGranted {
                    user,
                    leaf_label: grant.leaf_label,
                    path_labels: grant.path_labels.clone(),
                }
                .encode();
                net.send_unicast(self.endpoint, from, Bytes::from(ack));
                self.dispatch(net, &op);
                ServerEvent::Joined(grant)
            }
        }
    }

    fn process_leave<T: Transport>(
        &mut self,
        net: &mut T,
        user: UserId,
        from: EndpointId,
        auth: &[u8],
    ) -> ServerEvent {
        // Verify {leave-request}_{k_u}: HMAC-MD5 of the user id under the
        // member's individual key (the leaf key in the tree).
        let authentic = self
            .inner
            .tree()
            .keyset(user)
            .and_then(|ks| ks.first().cloned())
            .map(|(_, ik)| verify_mac(&hmac::<Md5>(ik.material(), &user.0.to_be_bytes()), auth))
            .unwrap_or(false);
        if !authentic {
            let deny = ControlMessage::LeaveDenied { user }.encode();
            net.send_unicast(self.endpoint, from, Bytes::from(deny));
            return ServerEvent::Rejected(
                user,
                RequestError::Tree(kg_core::tree::TreeError::NotAMember(user)),
            );
        }
        match self.inner.handle_leave(user) {
            Err(e) => {
                let deny = ControlMessage::LeaveDenied { user }.encode();
                net.send_unicast(self.endpoint, from, Bytes::from(deny));
                ServerEvent::Rejected(user, e)
            }
            Ok(op) => {
                // Evict from delivery structures *before* sending rekeys so
                // the departed member receives none of them.
                if let Some(ep) = self.members.remove(&user) {
                    net.leave_group(self.group_addr, ep);
                }
                let ack = ControlMessage::LeaveGranted { user }.encode();
                net.send_unicast(self.endpoint, from, Bytes::from(ack));
                self.dispatch(net, &op);
                ServerEvent::Left(user)
            }
        }
    }

    /// Resolve recipients and send each of the operation's frames
    /// (shipped rekey packets, or the derived-mode group multicast).
    fn dispatch<T: Transport>(&mut self, net: &mut T, op: &crate::ProcessedOp) {
        for (recipients, bytes) in op.frames() {
            self.send_to_recipients(net, &recipients, bytes);
        }
    }

    /// Send one encoded packet to the endpoints its recipients resolve to
    /// (against the *current* tree, which is post-update for both the
    /// immediate and the batched path).
    fn send_to_recipients<T: Transport>(&self, net: &mut T, recipients: &Recipients, bytes: &[u8]) {
        let _s = self.inner.obs().span("send");
        let payload = Bytes::copy_from_slice(bytes);
        match recipients {
            Recipients::Group => {
                net.send_multicast(self.endpoint, self.group_addr, payload);
            }
            Recipients::User(u) => {
                if let Some(&ep) = self.members.get(u) {
                    net.send_unicast(self.endpoint, ep, payload);
                }
            }
            Recipients::Subgroup(label) => {
                let eps = self.resolve(self.inner.tree().userset(*label));
                net.send_to_set(self.endpoint, &eps, payload);
            }
            Recipients::SubgroupExcept { include, exclude } => {
                let eps = self.resolve(self.inner.tree().userset_except(*include, *exclude));
                net.send_to_set(self.endpoint, &eps, payload);
            }
        }
    }

    fn resolve(&self, users: Vec<UserId>) -> Vec<EndpointId> {
        users.iter().filter_map(|u| self.members.get(u).copied()).collect()
    }
}

/// Compute the leave-request authenticator a member sends: HMAC-MD5 of its
/// user id under its individual key (client side of
/// `{leave-request}_{k_u}`).
pub fn leave_authenticator(user: UserId, individual_key: &[u8]) -> Vec<u8> {
    hmac::<Md5>(individual_key, &user.0.to_be_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessControl, ServerConfig};
    use kg_net::{NetConfig, SimNetwork};

    fn setup() -> (SimNetwork, NetServer) {
        let mut net = SimNetwork::new(NetConfig::default());
        let server = GroupKeyServer::new(ServerConfig::default(), AccessControl::AllowAll);
        let ns = NetServer::new(server, &mut net);
        (net, ns)
    }

    fn join(net: &mut SimNetwork, ns: &mut NetServer, user: UserId) -> (EndpointId, JoinGrant) {
        let ep = net.endpoint();
        let req = ControlMessage::JoinRequest { user }.encode();
        net.send_unicast(ep, ns.endpoint(), Bytes::from(req));
        net.run_until_quiet();
        let events = ns.poll(net);
        net.run_until_quiet();
        match events.into_iter().next().expect("one event") {
            ServerEvent::Joined(grant) => (ep, grant),
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn join_over_network_delivers_ack_and_rekeys() {
        let (mut net, mut ns) = setup();
        let (ep1, _) = join(&mut net, &mut ns, UserId(1));
        // Client 1 got: JoinGranted + its unicast rekey packet.
        assert!(net.pending(ep1) >= 2);
        let (ep2, _) = join(&mut net, &mut ns, UserId(2));
        // Client 1 additionally got the group rekey for user 2's join.
        assert!(net.pending(ep1) >= 3);
        assert!(net.pending(ep2) >= 2);
        assert_eq!(ns.inner().group_size(), 2);
    }

    #[test]
    fn leave_with_valid_authenticator() {
        let (mut net, mut ns) = setup();
        let (ep1, grant1) = join(&mut net, &mut ns, UserId(1));
        let (_ep2, _) = join(&mut net, &mut ns, UserId(2));
        let auth = leave_authenticator(UserId(1), grant1.individual_key.material());
        let req = ControlMessage::LeaveRequest { user: UserId(1), auth }.encode();
        net.send_unicast(ep1, ns.endpoint(), Bytes::from(req));
        net.run_until_quiet();
        let events = ns.poll(&mut net);
        assert!(matches!(events[0], ServerEvent::Left(UserId(1))));
        assert_eq!(ns.inner().group_size(), 1);
    }

    #[test]
    fn leave_with_bad_authenticator_denied() {
        let (mut net, mut ns) = setup();
        let (ep1, _) = join(&mut net, &mut ns, UserId(1));
        let req = ControlMessage::LeaveRequest { user: UserId(1), auth: vec![0; 16] }.encode();
        net.send_unicast(ep1, ns.endpoint(), Bytes::from(req));
        net.run_until_quiet();
        let events = ns.poll(&mut net);
        assert!(matches!(events[0], ServerEvent::Rejected(UserId(1), _)));
        assert_eq!(ns.inner().group_size(), 1, "member not evicted");
    }

    #[test]
    fn departed_member_receives_no_rekey_traffic() {
        let (mut net, mut ns) = setup();
        let (ep1, grant1) = join(&mut net, &mut ns, UserId(1));
        let (_ep2, _) = join(&mut net, &mut ns, UserId(2));
        let (_ep3, _) = join(&mut net, &mut ns, UserId(3));
        net.run_until_quiet();
        // Drain ep1's inbox, then have user 1 leave.
        while net.recv(ep1).is_some() {}
        let auth = leave_authenticator(UserId(1), grant1.individual_key.material());
        let req = ControlMessage::LeaveRequest { user: UserId(1), auth }.encode();
        net.send_unicast(ep1, ns.endpoint(), Bytes::from(req));
        net.run_until_quiet();
        ns.poll(&mut net);
        net.run_until_quiet();
        // ep1 gets exactly the LeaveGranted ack — no rekey packets.
        let mut got = Vec::new();
        while let Some(d) = net.recv(ep1) {
            got.push(d.payload);
        }
        assert_eq!(got.len(), 1);
        assert!(matches!(
            ControlMessage::decode(&got[0]),
            Ok(ControlMessage::LeaveGranted { user: UserId(1) })
        ));
    }

    #[test]
    fn garbage_datagrams_surface_typed_error_and_are_dropped() {
        let (mut net, mut ns) = setup();
        let ep = net.endpoint();
        net.send_unicast(ep, ns.endpoint(), Bytes::from_static(b"\xff\xff\xff"));
        net.run_until_quiet();
        let events = ns.poll(&mut net);
        assert_eq!(events.len(), 1);
        assert!(
            matches!(events[0], ServerEvent::BadDatagram { from, .. } if from == ep),
            "got {events:?}"
        );
        assert_eq!(ns.inner().group_size(), 0, "server state untouched");
    }

    fn batched_setup(interval_ms: u64, max_pending: usize) -> (SimNetwork, NetServer) {
        let mut net = SimNetwork::new(NetConfig::default());
        let config = ServerConfig {
            rekey: crate::RekeyPolicy::Batched { interval_ms, max_pending },
            ..ServerConfig::default()
        };
        let server = GroupKeyServer::new(config, AccessControl::AllowAll);
        let ns = NetServer::new(server, &mut net);
        (net, ns)
    }

    #[test]
    fn batched_join_queues_then_flushes_at_interval() {
        let (mut net, mut ns) = batched_setup(100, 1000);
        let ep1 = net.endpoint();
        let ep2 = net.endpoint();
        for (ep, u) in [(ep1, 1u64), (ep2, 2)] {
            let req = ControlMessage::JoinRequest { user: UserId(u) }.encode();
            net.send_unicast(ep, ns.endpoint(), Bytes::from(req));
        }
        net.run_until_quiet();
        // Before the interval elapses the requests are only queued.
        let events = ns.tick(&mut net, 50);
        assert_eq!(events, vec![ServerEvent::Queued(UserId(1)), ServerEvent::Queued(UserId(2))]);
        assert_eq!(ns.inner().group_size(), 0);
        assert_eq!(ns.inner().pending_requests(), 2);
        net.run_until_quiet();
        assert_eq!(net.pending(ep1), 0, "no ack before the flush");

        // At the interval boundary the batch flushes: members admitted,
        // acks + rekey traffic delivered.
        let events = ns.tick(&mut net, 100);
        assert_eq!(events.iter().filter(|e| matches!(e, ServerEvent::Joined(_))).count(), 2);
        assert!(events
            .iter()
            .any(|e| matches!(e, ServerEvent::Flushed { interval: 1, joined: 2, left: 0 })));
        assert_eq!(ns.inner().group_size(), 2);
        net.run_until_quiet();
        // Each joiner received a JoinGranted ack plus at least its unicast
        // path packet.
        assert!(net.pending(ep1) >= 2);
        assert!(net.pending(ep2) >= 2);
    }

    #[test]
    fn batched_queue_depth_flushes_without_tick_deadline() {
        let (mut net, mut ns) = batched_setup(1_000_000, 3);
        let eps: Vec<EndpointId> = (0..3u64)
            .map(|u| {
                let ep = net.endpoint();
                let req = ControlMessage::JoinRequest { user: UserId(u) }.encode();
                net.send_unicast(ep, ns.endpoint(), Bytes::from(req));
                ep
            })
            .collect();
        net.run_until_quiet();
        // now_ms is far before the deadline; depth (3 >= max_pending)
        // forces the flush.
        let events = ns.tick(&mut net, 1);
        assert!(events
            .iter()
            .any(|e| matches!(e, ServerEvent::Flushed { interval: 1, joined: 3, left: 0 })));
        assert_eq!(ns.inner().group_size(), 3);
        net.run_until_quiet();
        for ep in eps {
            assert!(net.pending(ep) >= 1);
        }
    }

    #[test]
    fn batched_departed_member_gets_ack_but_no_batch_traffic() {
        let (mut net, mut ns) = batched_setup(10, 1000);
        // Admit three members in the seed interval.
        let mut eps = Vec::new();
        let mut grants = Vec::new();
        for u in 1..=3u64 {
            let ep = net.endpoint();
            let req = ControlMessage::JoinRequest { user: UserId(u) }.encode();
            net.send_unicast(ep, ns.endpoint(), Bytes::from(req));
            eps.push(ep);
        }
        net.run_until_quiet();
        for ev in ns.tick(&mut net, 10) {
            if let ServerEvent::Joined(g) = ev {
                grants.push(g);
            }
        }
        net.run_until_quiet();
        while net.recv(eps[0]).is_some() {}

        // User 1 leaves in the next interval.
        let g1 = grants.iter().find(|g| g.user == UserId(1)).unwrap();
        let auth = leave_authenticator(UserId(1), g1.individual_key.material());
        let req = ControlMessage::LeaveRequest { user: UserId(1), auth }.encode();
        net.send_unicast(eps[0], ns.endpoint(), Bytes::from(req));
        net.run_until_quiet();
        assert_eq!(ns.tick(&mut net, 15), vec![ServerEvent::Queued(UserId(1))]);
        assert_eq!(ns.inner().group_size(), 3, "still a member until the flush");
        let events = ns.tick(&mut net, 20);
        assert!(events.contains(&ServerEvent::Left(UserId(1))));
        assert!(events
            .iter()
            .any(|e| matches!(e, ServerEvent::Flushed { interval: 2, joined: 0, left: 1 })));
        assert_eq!(ns.inner().group_size(), 2);
        net.run_until_quiet();
        // The departed endpoint got exactly the LeaveGranted ack; the
        // batch rekey packets were sent after its eviction.
        let mut got = Vec::new();
        while let Some(d) = net.recv(eps[0]) {
            got.push(d.payload);
        }
        assert_eq!(got.len(), 1);
        assert!(matches!(
            ControlMessage::decode(&got[0]),
            Ok(ControlMessage::LeaveGranted { user: UserId(1) })
        ));
        // Survivors did get batch traffic.
        assert!(net.pending(eps[1]) >= 1);
    }

    #[test]
    fn denied_join_gets_deny_message() {
        let mut net = SimNetwork::new(NetConfig::default());
        let server =
            GroupKeyServer::new(ServerConfig::default(), AccessControl::allow_list([UserId(42)]));
        let mut ns = NetServer::new(server, &mut net);
        let ep = net.endpoint();
        let req = ControlMessage::JoinRequest { user: UserId(7) }.encode();
        net.send_unicast(ep, ns.endpoint(), Bytes::from(req));
        net.run_until_quiet();
        let events = ns.poll(&mut net);
        assert!(matches!(events[0], ServerEvent::Rejected(UserId(7), _)));
        net.run_until_quiet();
        let dg = net.recv(ep).unwrap();
        assert!(matches!(
            ControlMessage::decode(&dg.payload),
            Ok(ControlMessage::JoinDenied { user: UserId(7) })
        ));
    }
}
