//! Group access control.
//!
//! "We assume that group access control is performed by server s using an
//! access control list provided by the initiator of the secure group"
//! (§3). The list can be open (any authenticated user), a whitelist, or a
//! whitelist with explicit revocations.

use kg_core::ids::UserId;
use std::collections::BTreeSet;

/// The server's admission policy.
#[derive(Debug, Clone)]
pub enum AccessControl {
    /// Admit anyone (the configuration the measurements use — the paper
    /// excludes authentication/authorization time from its numbers).
    AllowAll,
    /// Admit exactly the listed users.
    AllowList(BTreeSet<UserId>),
}

impl AccessControl {
    /// Build a whitelist policy.
    pub fn allow_list(users: impl IntoIterator<Item = UserId>) -> Self {
        AccessControl::AllowList(users.into_iter().collect())
    }

    /// Whether `u` may join.
    pub fn permits(&self, u: UserId) -> bool {
        match self {
            AccessControl::AllowAll => true,
            AccessControl::AllowList(set) => set.contains(&u),
        }
    }

    /// Add `u` to the whitelist (no-op for [`AccessControl::AllowAll`]).
    pub fn grant(&mut self, u: UserId) {
        if let AccessControl::AllowList(set) = self {
            set.insert(u);
        }
    }

    /// Revoke `u`'s admission right (converts AllowAll into a complement
    /// we cannot represent, so it panics there — revocation only makes
    /// sense against a list).
    pub fn revoke(&mut self, u: UserId) {
        match self {
            AccessControl::AllowAll => {
                panic!("cannot revoke from AllowAll; use an explicit allow list")
            }
            AccessControl::AllowList(set) => {
                set.remove(&u);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_all_permits_everyone() {
        let acl = AccessControl::AllowAll;
        assert!(acl.permits(UserId(0)));
        assert!(acl.permits(UserId(u64::MAX)));
    }

    #[test]
    fn allow_list_is_exact() {
        let acl = AccessControl::allow_list([UserId(1), UserId(2)]);
        assert!(acl.permits(UserId(1)));
        assert!(!acl.permits(UserId(3)));
    }

    #[test]
    fn grant_and_revoke() {
        let mut acl = AccessControl::allow_list([UserId(1)]);
        acl.grant(UserId(5));
        assert!(acl.permits(UserId(5)));
        acl.revoke(UserId(5));
        assert!(!acl.permits(UserId(5)));
    }

    #[test]
    #[should_panic(expected = "AllowAll")]
    fn revoke_from_allow_all_panics() {
        AccessControl::AllowAll.revoke(UserId(1));
    }
}
