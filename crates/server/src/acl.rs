//! Group access control.
//!
//! "We assume that group access control is performed by server s using an
//! access control list provided by the initiator of the secure group"
//! (§3). The list can be open (any authenticated user), a whitelist, or a
//! whitelist with explicit revocations.

use kg_core::ids::UserId;
use std::collections::BTreeSet;

/// Errors from mutating an access-control list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AclError {
    /// Revocation was attempted against [`AccessControl::AllowAll`], whose
    /// complement ("everyone except u") this type cannot represent.
    RevokeFromAllowAll(UserId),
}

impl std::fmt::Display for AclError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AclError::RevokeFromAllowAll(u) => {
                write!(f, "cannot revoke {u} from AllowAll; use an explicit allow list")
            }
        }
    }
}

impl std::error::Error for AclError {}

/// The server's admission policy.
#[derive(Debug, Clone)]
pub enum AccessControl {
    /// Admit anyone (the configuration the measurements use — the paper
    /// excludes authentication/authorization time from its numbers).
    AllowAll,
    /// Admit exactly the listed users.
    AllowList(BTreeSet<UserId>),
}

impl AccessControl {
    /// Build a whitelist policy.
    pub fn allow_list(users: impl IntoIterator<Item = UserId>) -> Self {
        AccessControl::AllowList(users.into_iter().collect())
    }

    /// Whether `u` may join.
    pub fn permits(&self, u: UserId) -> bool {
        match self {
            AccessControl::AllowAll => true,
            AccessControl::AllowList(set) => set.contains(&u),
        }
    }

    /// Add `u` to the whitelist (no-op for [`AccessControl::AllowAll`]).
    pub fn grant(&mut self, u: UserId) {
        if let AccessControl::AllowList(set) = self {
            set.insert(u);
        }
    }

    /// Revoke `u`'s admission right. Revocation only makes sense against a
    /// list: for [`AccessControl::AllowAll`] the result would be a
    /// complement set this type cannot represent, so that case is an
    /// error rather than a silent no-op.
    pub fn revoke(&mut self, u: UserId) -> Result<(), AclError> {
        match self {
            AccessControl::AllowAll => Err(AclError::RevokeFromAllowAll(u)),
            AccessControl::AllowList(set) => {
                set.remove(&u);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_all_permits_everyone() {
        let acl = AccessControl::AllowAll;
        assert!(acl.permits(UserId(0)));
        assert!(acl.permits(UserId(u64::MAX)));
    }

    #[test]
    fn allow_list_is_exact() {
        let acl = AccessControl::allow_list([UserId(1), UserId(2)]);
        assert!(acl.permits(UserId(1)));
        assert!(!acl.permits(UserId(3)));
    }

    #[test]
    fn grant_and_revoke() {
        let mut acl = AccessControl::allow_list([UserId(1)]);
        acl.grant(UserId(5));
        assert!(acl.permits(UserId(5)));
        acl.revoke(UserId(5)).unwrap();
        assert!(!acl.permits(UserId(5)));
        // Revoking an absent user is a harmless no-op.
        acl.revoke(UserId(99)).unwrap();
    }

    #[test]
    fn revoke_from_allow_all_is_an_error() {
        let mut acl = AccessControl::AllowAll;
        assert_eq!(acl.revoke(UserId(1)), Err(AclError::RevokeFromAllowAll(UserId(1))));
        assert!(acl.permits(UserId(1)), "policy unchanged after failed revoke");
        let msg = AclError::RevokeFromAllowAll(UserId(1)).to_string();
        assert!(msg.contains("AllowAll"));
    }
}
