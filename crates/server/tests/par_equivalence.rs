//! Sequential/parallel equivalence property suite.
//!
//! The tentpole invariant of `kg-par`: a server configured with any
//! worker count produces **byte-identical rekey output** and an
//! **identical observability ledger** (counters, gauges, event kinds,
//! timeline totals — everything except wall-clock durations) to the
//! sequential server, across random join/leave/refresh/flush schedules.
//! The vendored proptest stand-in seeds its RNG from the test name, so
//! every run replays the identical schedule set deterministically.

use kg_core::rekey::Strategy;
use kg_core::UserId;
use kg_obs::{Obs, ObsConfig};
use kg_server::{
    AccessControl, AuthPolicy, GroupKeyServer, ParallelConfig, RekeyPolicy, ServerConfig,
};

/// Tiny deterministic xorshift so one `u64` seed fans out into a whole
/// schedule.
struct Fuzz(u64);

impl Fuzz {
    fn new(seed: u64) -> Self {
        Fuzz(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One random immediate-mode schedule: initial joins, then a mix of
/// joins, leaves, and group-key refreshes.
#[derive(Debug, Clone)]
enum Op {
    Join(UserId),
    Leave(UserId),
    Refresh,
}

fn random_schedule(f: &mut Fuzz) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut present: Vec<u64> = Vec::new();
    let initial = 8 + f.below(24);
    for u in 0..initial {
        ops.push(Op::Join(UserId(u)));
        present.push(u);
    }
    let mut next_user = initial;
    for _ in 0..40 {
        match f.below(5) {
            0 | 1 => {
                ops.push(Op::Join(UserId(next_user)));
                present.push(next_user);
                next_user += 1;
            }
            2 | 3 if present.len() > 2 => {
                let pick = f.below(present.len() as u64) as usize;
                ops.push(Op::Leave(UserId(present.swap_remove(pick))));
            }
            _ => ops.push(Op::Refresh),
        }
    }
    ops
}

/// The comparable slice of an obs ledger: every counter and gauge line
/// of the Prometheus rendering, minus histogram artifacts (whose sums
/// and quantiles are wall-clock durations and legitimately differ
/// between runs) and minus `kg_par_queue_depth`, a gauge the pool
/// registers only when worker threads exist (it always settles at 0;
/// the sequential server simply never creates it).
fn ledger(obs: &Obs) -> Vec<String> {
    obs.render_prometheus()
        .lines()
        .filter(|l| {
            !l.contains("_sum")
                && !l.contains("_count")
                && !l.contains("quantile=")
                && !l.starts_with("kg_par_queue_depth")
        })
        .map(String::from)
        .collect()
}

fn server(
    workers: usize,
    strategy: Strategy,
    auth: AuthPolicy,
    rekey: RekeyPolicy,
) -> (GroupKeyServer, Obs) {
    let config = ServerConfig {
        strategy,
        auth,
        rekey,
        // Clamp off: equivalence must hold with real pool threads even
        // when the test host has a single core.
        parallel: ParallelConfig { workers, clamp_to_hardware: false },
        ..ServerConfig::default()
    };
    let mut srv = GroupKeyServer::new(config, AccessControl::AllowAll);
    let obs = Obs::new(ObsConfig::default());
    srv.attach_obs(obs.clone());
    (srv, obs)
}

fn pick_strategy(f: &mut Fuzz) -> Strategy {
    match f.below(3) {
        0 => Strategy::UserOriented,
        1 => Strategy::KeyOriented,
        _ => Strategy::GroupOriented,
    }
}

fn pick_auth(f: &mut Fuzz) -> AuthPolicy {
    match f.below(4) {
        0 => AuthPolicy::None,
        1 => AuthPolicy::Digest,
        2 => AuthPolicy::SignEach,
        _ => AuthPolicy::SignBatch,
    }
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(12))]

    /// Immediate mode: every operation's encoded packets are
    /// byte-identical between a 1-worker and a 4-worker server, and the
    /// final obs ledgers match.
    #[test]
    fn immediate_schedules_are_worker_count_invariant(seed in 0u64..) {
        let f = &mut Fuzz::new(seed);
        let strategy = pick_strategy(f);
        let auth = pick_auth(f);
        let schedule = random_schedule(f);

        let (mut seq, seq_obs) = server(1, strategy, auth, RekeyPolicy::Immediate);
        let (mut par, par_obs) = server(4, strategy, auth, RekeyPolicy::Immediate);

        for (i, op) in schedule.iter().enumerate() {
            let (a, b) = match op {
                Op::Join(u) => (seq.handle_join(*u), par.handle_join(*u)),
                Op::Leave(u) => (seq.handle_leave(*u), par.handle_leave(*u)),
                Op::Refresh => (seq.refresh_group_key(), par.refresh_group_key()),
            };
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    proptest::prop_assert_eq!(
                        &a.encoded, &b.encoded,
                        "op {} ({:?}) bytes diverged (seed {}, {:?}/{:?})",
                        i, op, seed, strategy, auth
                    );
                    proptest::prop_assert_eq!(a.seq, b.seq);
                }
                (Err(ea), Err(eb)) => proptest::prop_assert_eq!(ea, eb),
                (a, b) => panic!("outcome diverged at op {i} ({op:?}): {a:?} vs {b:?}"),
            }
        }

        proptest::prop_assert_eq!(ledger(&seq_obs), ledger(&par_obs), "counter/gauge ledgers diverged (seed {})", seed);
        proptest::prop_assert_eq!(seq_obs.event_kind_counts(), par_obs.event_kind_counts());
        proptest::prop_assert_eq!(seq_obs.timeline_total(), par_obs.timeline_total());
        // The pool's queue-depth gauge must have drained back to zero.
        proptest::prop_assert!(par_obs.render_prometheus().contains("kg_par_queue_depth 0"));
    }

    /// Batched mode: random enqueue/flush schedules produce identical
    /// intervals — packets, grants, departures — and identical ledgers.
    #[test]
    fn batched_schedules_are_worker_count_invariant(seed in 0u64..) {
        let f = &mut Fuzz::new(seed);
        let strategy = pick_strategy(f);
        let auth = pick_auth(f);
        let rekey = RekeyPolicy::Batched { interval_ms: 50, max_pending: 1 << 20 };

        let (mut seq, seq_obs) = server(1, strategy, auth, rekey);
        let (mut par, par_obs) = server(3, strategy, auth, rekey);

        let mut present: Vec<u64> = Vec::new();
        let mut next_user = 0u64;
        let mut now_ms = 0u64;
        for round in 0..6 {
            let burst = 4 + f.below(28);
            for _ in 0..burst {
                if f.below(3) == 0 && present.len() > 2 {
                    let pick = f.below(present.len() as u64) as usize;
                    let u = UserId(present.swap_remove(pick));
                    seq.enqueue_leave(u).unwrap();
                    par.enqueue_leave(u).unwrap();
                } else {
                    let u = UserId(next_user);
                    next_user += 1;
                    present.push(u.0);
                    seq.enqueue_join(u).unwrap();
                    par.enqueue_join(u).unwrap();
                }
            }
            now_ms += 50 + f.below(100);
            let (a, b) = (seq.flush(now_ms).unwrap(), par.flush(now_ms).unwrap());
            match (a, b) {
                (Some(a), Some(b)) => {
                    proptest::prop_assert_eq!(
                        &a.encoded, &b.encoded,
                        "interval {} bytes diverged (seed {}, {:?}/{:?})",
                        round, seed, strategy, auth
                    );
                    proptest::prop_assert_eq!(a.interval, b.interval);
                    proptest::prop_assert_eq!(
                        a.grants.len(), b.grants.len(),
                        "grant counts diverged"
                    );
                    proptest::prop_assert_eq!(&a.departed, &b.departed);
                }
                (None, None) => {}
                (a, b) => panic!("flush outcome diverged at round {round}: {:?} vs {:?}", a.is_some(), b.is_some()),
            }
        }

        proptest::prop_assert_eq!(ledger(&seq_obs), ledger(&par_obs), "counter/gauge ledgers diverged (seed {})", seed);
        proptest::prop_assert_eq!(seq_obs.event_kind_counts(), par_obs.event_kind_counts());
        proptest::prop_assert_eq!(seq_obs.timeline_total(), par_obs.timeline_total());
    }
}
