//! Exhaustive wire-format conformance tests.
//!
//! Every message variant the protocol can produce must (a) round-trip
//! through encode/decode unchanged, and (b) reject — never panic on —
//! truncated or bit-flipped frames. The unit tests inside `kg-wire` spot
//! check individual variants; this suite enumerates the full cross
//! product: every `OpKind` × every `Recipients` × every `AuthTag` for
//! [`RekeyPacket`], every `AuthTag` for [`BatchRekeyPacket`], and every
//! [`ControlMessage`] variant.

use kg_core::derive::DerivedLink;
use kg_core::ids::{KeyLabel, KeyRef, KeyVersion, UserId};
use kg_core::merkle::{AuthPath, Side};
use kg_core::rekey::{KeyBundle, Recipients, RekeyMessage};
use kg_obs::{HistogramSnapshot, TraceContext, TraceSpan};
use kg_wire::{
    AuthTag, BatchRekeyPacket, ClusterBody, ClusterEnvelope, ControlMessage, DerivedRekeyPacket,
    GroupId, OpKind, RekeyPacket, ShardId, TelemetrySnapshot,
};

const ALL_OPS: [OpKind; 4] = [OpKind::Join, OpKind::Leave, OpKind::Batch, OpKind::Refresh];

fn all_recipients() -> Vec<Recipients> {
    vec![
        Recipients::User(UserId(7)),
        Recipients::Subgroup(KeyLabel(3)),
        Recipients::SubgroupExcept { include: KeyLabel(4), exclude: KeyLabel(11) },
        Recipients::Group,
    ]
}

fn all_auth_tags() -> Vec<AuthTag> {
    vec![
        AuthTag::None,
        AuthTag::Digest(vec![0x11; 16]),
        AuthTag::Signed { signature: vec![0x22; 64] },
        AuthTag::MerkleSigned {
            root_signature: vec![0x33; 64],
            path: AuthPath {
                index: 5,
                siblings: vec![(Side::Left, vec![0x44; 16]), (Side::Right, vec![0x55; 16])],
            },
        },
    ]
}

fn bundle(n: u64) -> KeyBundle {
    KeyBundle {
        targets: vec![
            KeyRef::new(KeyLabel(n), KeyVersion(n % 4)),
            KeyRef::new(KeyLabel(n + 1), KeyVersion(0)),
        ],
        encrypted_with: KeyRef::new(KeyLabel(100 + n), KeyVersion(2)),
        iv: vec![n as u8; 8],
        ciphertext: vec![0xC3; 16 + (n as usize % 3) * 8],
    }
}

/// Every distinct rekey packet shape: 4 ops × 4 recipients × 4 auths,
/// with bundle counts varying 0..=2 so the empty case is covered too.
fn all_rekey_packets() -> Vec<RekeyPacket> {
    let mut packets = Vec::new();
    for (i, op) in ALL_OPS.into_iter().enumerate() {
        for (j, recipients) in all_recipients().into_iter().enumerate() {
            for (k, auth) in all_auth_tags().into_iter().enumerate() {
                let nbundles = (i + j + k) % 3;
                packets.push(RekeyPacket {
                    seq: (i * 100 + j * 10 + k) as u64,
                    op,
                    timestamp_ms: 1_000 + k as u64,
                    message: RekeyMessage {
                        recipients: recipients.clone(),
                        bundles: (0..nbundles).map(|b| bundle(b as u64)).collect(),
                    },
                    auth,
                });
            }
        }
    }
    packets
}

fn all_batch_packets() -> Vec<BatchRekeyPacket> {
    all_auth_tags()
        .into_iter()
        .enumerate()
        .map(|(k, auth)| BatchRekeyPacket {
            interval: 40 + k as u64,
            timestamp_ms: 9_000 + k as u64,
            joins: k as u32,
            leaves: 5 - k as u32,
            message: RekeyMessage {
                recipients: Recipients::Group,
                bundles: (0..k).map(|b| bundle(b as u64)).collect(),
            },
            auth,
        })
        .collect()
}

/// Every derived-packet shape: 4 ops × 4 auths, with the derivation work
/// list and shipped-message list sizes varying so the empty cases (a pure
/// leave with no code, a pure refresh with no bundles) are covered.
fn all_derived_packets() -> Vec<DerivedRekeyPacket> {
    let mut packets = Vec::new();
    for (i, op) in ALL_OPS.into_iter().enumerate() {
        for (k, auth) in all_auth_tags().into_iter().enumerate() {
            let nlinks = (i + k) % 3;
            let nmsgs = (i + k + 1) % 3;
            packets.push(DerivedRekeyPacket {
                seq: (i * 10 + k) as u64,
                interval: 1 + k as u64,
                op,
                timestamp_ms: 2_000 + i as u64,
                code: if nlinks == 0 { Vec::new() } else { vec![0xD7; 16] },
                changed: (0..nlinks)
                    .map(|l| DerivedLink {
                        new_ref: KeyRef::new(KeyLabel(l as u64), KeyVersion(2)),
                        from: KeyRef::new(KeyLabel(l as u64), KeyVersion(1)),
                    })
                    .collect(),
                messages: (0..nmsgs)
                    .map(|m| RekeyMessage {
                        recipients: all_recipients()[m].clone(),
                        bundles: (0..m).map(|b| bundle(b as u64)).collect(),
                    })
                    .collect(),
                auth,
            });
        }
    }
    packets
}

fn all_control_messages() -> Vec<ControlMessage> {
    vec![
        ControlMessage::JoinRequest { user: UserId(1) },
        ControlMessage::JoinGranted {
            user: UserId(2),
            leaf_label: KeyLabel(17),
            path_labels: vec![KeyLabel(0), KeyLabel(3), KeyLabel(9)],
        },
        ControlMessage::JoinDenied { user: UserId(3) },
        ControlMessage::LeaveRequest { user: UserId(4), auth: vec![0xAA; 16] },
        ControlMessage::LeaveGranted { user: UserId(5) },
        ControlMessage::LeaveDenied { user: UserId(6) },
    ]
}

#[test]
fn every_rekey_packet_variant_roundtrips() {
    let packets = all_rekey_packets();
    assert_eq!(packets.len(), 64, "4 ops x 4 recipients x 4 auths");
    for pkt in packets {
        let bytes = pkt.encode();
        assert_eq!(bytes.len(), pkt.wire_len(), "{pkt:?}");
        let (decoded, body_len) = RekeyPacket::decode(&bytes).expect("valid encoding");
        assert_eq!(decoded, pkt);
        assert_eq!(&bytes[..body_len], pkt.encode_body().as_slice());
    }
}

#[test]
fn every_batch_packet_variant_roundtrips() {
    for pkt in all_batch_packets() {
        let bytes = pkt.encode();
        assert!(BatchRekeyPacket::sniff(&bytes));
        assert_eq!(bytes.len(), pkt.wire_len(), "{pkt:?}");
        let (decoded, body_len) = BatchRekeyPacket::decode(&bytes).expect("valid encoding");
        assert_eq!(decoded, pkt);
        assert_eq!(&bytes[..body_len], pkt.encode_body().as_slice());
    }
}

#[test]
fn every_derived_packet_variant_roundtrips() {
    let packets = all_derived_packets();
    assert_eq!(packets.len(), 16, "4 ops x 4 auths");
    for pkt in packets {
        let bytes = pkt.encode();
        assert!(DerivedRekeyPacket::sniff(&bytes));
        assert_eq!(bytes.len(), pkt.wire_len(), "{pkt:?}");
        let (decoded, body_len) = DerivedRekeyPacket::decode(&bytes).expect("valid encoding");
        assert_eq!(decoded, pkt);
        assert_eq!(&bytes[..body_len], pkt.encode_body().as_slice());
    }
}

#[test]
fn every_control_message_variant_roundtrips() {
    for msg in all_control_messages() {
        let decoded = ControlMessage::decode(&msg.encode()).expect("valid encoding");
        assert_eq!(decoded, msg);
    }
}

/// Every cluster-plane body variant, including one carrying each control
/// message so the tunnelled encoding is exercised end to end.
fn all_cluster_envelopes() -> Vec<ClusterEnvelope> {
    let mut bodies: Vec<ClusterBody> =
        all_control_messages().into_iter().map(ClusterBody::Control).collect();
    bodies.extend([
        ClusterBody::Grant {
            user: UserId(9),
            key: vec![0x5C; 16],
            leaf_label: KeyLabel(21),
            path_labels: vec![KeyLabel(0), KeyLabel(2), KeyLabel(10)],
        },
        ClusterBody::RekeyGroup { payload: all_batch_packets()[0].encode() },
        ClusterBody::RekeyUsers {
            users: vec![UserId(3), UserId(4)],
            payload: all_rekey_packets()[0].encode(),
        },
        ClusterBody::Refresh,
        ClusterBody::Shutdown,
        ClusterBody::ShutdownAck { members: 128, wal_tail: 0 },
        ClusterBody::StatsRequest,
        ClusterBody::StatsReport {
            members: 4096,
            intervals: 16,
            requests: 4200,
            encryptions: 90_000,
            pending: 17,
        },
        ClusterBody::Telemetry {
            snapshot: TelemetrySnapshot {
                seq: 5,
                at_us: 777,
                counters: vec![("kg_requests_total{kind=\"join\"}".into(), 12)],
                gauges: vec![("kg_batch_queue_depth".into(), -4)],
                hists: vec![(
                    "kg_span_us{span=\"op.join\"}".into(),
                    HistogramSnapshot {
                        count: 3,
                        sum: 30,
                        min: 5,
                        max: 15,
                        p50: 10,
                        p90: 15,
                        p99: 15,
                    },
                )],
                spans: vec![TraceSpan {
                    trace_id: 9,
                    span_id: 2,
                    parent_span: 1,
                    hop: 1,
                    path: "node.parse".into(),
                    start_us: 4,
                    end_us: 44,
                }],
            },
        },
        ClusterBody::MetricsRequest { format: 1 },
        ClusterBody::MetricsReport { text: "{\"counters\":{}}".into() },
        ClusterBody::TraceRequest { trace_id: 0 },
        ClusterBody::TraceReport {
            trace_id: 9,
            spans: vec![TraceSpan {
                trace_id: 9,
                span_id: 1,
                parent_span: 0,
                hop: 0,
                path: "router.recv".into(),
                start_us: 0,
                end_us: 50,
            }],
        },
    ]);
    bodies
        .into_iter()
        .enumerate()
        .map(|(i, body)| ClusterEnvelope {
            shard: ShardId(i as u16),
            group: GroupId(1000 + i as u32),
            // Alternate traced / untraced so the optional header is
            // exercised against every body shape.
            trace: if i % 2 == 1 {
                Some(TraceContext {
                    trace_id: 100 + i as u64,
                    parent_span: i as u64,
                    hop: (i % 3) as u8,
                })
            } else {
                None
            },
            body,
        })
        .collect()
}

#[test]
fn every_cluster_envelope_variant_roundtrips() {
    for env in all_cluster_envelopes() {
        let bytes = env.encode();
        assert!(ClusterEnvelope::sniff(&bytes));
        assert_eq!(ClusterEnvelope::decode(&bytes).expect("valid encoding"), env);
    }
}

/// Every strict prefix of a valid frame must decode to an error. The
/// encodings are deterministic with no optional trailing fields, so a
/// truncated frame can never be mistaken for a complete one.
#[test]
fn truncation_always_errors_never_panics() {
    for pkt in all_rekey_packets() {
        let bytes = pkt.encode();
        for cut in 0..bytes.len() {
            assert!(RekeyPacket::decode(&bytes[..cut]).is_err(), "cut {cut} of {pkt:?}");
        }
    }
    for pkt in all_batch_packets() {
        let bytes = pkt.encode();
        for cut in 0..bytes.len() {
            assert!(BatchRekeyPacket::decode(&bytes[..cut]).is_err(), "cut {cut} of {pkt:?}");
        }
    }
    for pkt in all_derived_packets() {
        let bytes = pkt.encode();
        for cut in 0..bytes.len() {
            assert!(DerivedRekeyPacket::decode(&bytes[..cut]).is_err(), "cut {cut} of {pkt:?}");
        }
    }
    for msg in all_control_messages() {
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            assert!(ControlMessage::decode(&bytes[..cut]).is_err(), "cut {cut} of {msg:?}");
        }
    }
    // Cluster envelopes with trailing-payload bodies may legitimately
    // decode from a prefix; the invariant there is no-misparse instead.
    for env in all_cluster_envelopes() {
        let bytes = env.encode();
        for cut in 0..bytes.len() {
            if let Ok(decoded) = ClusterEnvelope::decode(&bytes[..cut]) {
                assert_eq!(decoded.encode(), &bytes[..cut], "cut {cut} of {env:?}");
            }
        }
    }
}

/// Flipping any single bit of a valid frame must either produce a typed
/// decode error or decode to a message whose canonical re-encoding equals
/// the flipped bytes (a different but well-formed frame, e.g. a changed
/// user id). Silently misparsing — decoding to something that would
/// encode differently — is the failure mode this guards against, and
/// panicking is never acceptable.
#[test]
fn bit_flips_never_misparse_or_panic() {
    for pkt in all_rekey_packets() {
        let bytes = pkt.encode();
        for pos in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[pos / 8] ^= 1 << (pos % 8);
            if let Ok((decoded, _)) = RekeyPacket::decode(&flipped) {
                assert_eq!(decoded.encode(), flipped, "bit {pos} of {pkt:?}");
            }
        }
    }
    for pkt in all_batch_packets() {
        let bytes = pkt.encode();
        for pos in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[pos / 8] ^= 1 << (pos % 8);
            if let Ok((decoded, _)) = BatchRekeyPacket::decode(&flipped) {
                assert_eq!(decoded.encode(), flipped, "bit {pos} of {pkt:?}");
            }
        }
    }
    for pkt in all_derived_packets() {
        let bytes = pkt.encode();
        for pos in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[pos / 8] ^= 1 << (pos % 8);
            if let Ok((decoded, _)) = DerivedRekeyPacket::decode(&flipped) {
                assert_eq!(decoded.encode(), flipped, "bit {pos} of {pkt:?}");
            }
        }
    }
    for msg in all_control_messages() {
        let bytes = msg.encode();
        for pos in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[pos / 8] ^= 1 << (pos % 8);
            if let Ok(decoded) = ControlMessage::decode(&flipped) {
                assert_eq!(decoded.encode(), flipped, "bit {pos} of {msg:?}");
            }
        }
    }
    for env in all_cluster_envelopes() {
        let bytes = env.encode();
        for pos in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[pos / 8] ^= 1 << (pos % 8);
            if let Ok(decoded) = ClusterEnvelope::decode(&flipped) {
                assert_eq!(decoded.encode(), flipped, "bit {pos} of {env:?}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic fuzz harness
//
// The vendored proptest stand-in seeds its RNG from the test name, so
// every run explores the identical case set — failures reproduce
// exactly, with no corpus files and no network. Structured cases come
// from a small PRNG-driven generator (arbitrary field values with
// deliberate bias toward extremes, arbitrary collection sizes), which
// reaches far more shapes than the fixed 4×4×4 enumeration above.
// ---------------------------------------------------------------------------

/// Tiny xorshift PRNG so a single `u64` proptest input fans out into a
/// whole structured value without needing strategy combinators.
struct Fuzz(u64);

impl Fuzz {
    fn new(seed: u64) -> Self {
        Fuzz(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// A u64 biased toward the boundary values length/offset bugs live at.
    fn value(&mut self) -> u64 {
        match self.below(5) {
            0 => 0,
            1 => u64::MAX,
            2 => u32::MAX as u64,
            _ => self.next(),
        }
    }

    fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.below(max_len as u64 + 1) as usize;
        (0..len).map(|_| self.next() as u8).collect()
    }

    /// A printable-ASCII string (metric names / span paths are UTF-8
    /// on the wire; arbitrary bytes there are a typed decode error,
    /// which the garbage fuzz covers separately).
    fn string(&mut self, max_len: usize) -> String {
        let len = self.below(max_len as u64 + 1) as usize;
        (0..len).map(|_| (b' ' + (self.next() % 95) as u8) as char).collect()
    }
}

fn fuzz_key_ref(f: &mut Fuzz) -> KeyRef {
    KeyRef::new(KeyLabel(f.value()), KeyVersion(f.value()))
}

fn fuzz_bundle(f: &mut Fuzz) -> KeyBundle {
    KeyBundle {
        targets: (0..f.below(4)).map(|_| fuzz_key_ref(f)).collect(),
        encrypted_with: fuzz_key_ref(f),
        iv: f.bytes(16),
        ciphertext: f.bytes(64),
    }
}

fn fuzz_recipients(f: &mut Fuzz) -> Recipients {
    match f.below(4) {
        0 => Recipients::User(UserId(f.value())),
        1 => Recipients::Subgroup(KeyLabel(f.value())),
        2 => Recipients::SubgroupExcept {
            include: KeyLabel(f.value()),
            exclude: KeyLabel(f.value()),
        },
        _ => Recipients::Group,
    }
}

fn fuzz_auth(f: &mut Fuzz) -> AuthTag {
    match f.below(4) {
        0 => AuthTag::None,
        1 => AuthTag::Digest(f.bytes(32)),
        2 => AuthTag::Signed { signature: f.bytes(96) },
        _ => AuthTag::MerkleSigned {
            root_signature: f.bytes(96),
            path: AuthPath {
                index: f.below(1 << 16) as u32,
                siblings: (0..f.below(5))
                    .map(|_| (if f.below(2) == 0 { Side::Left } else { Side::Right }, f.bytes(32)))
                    .collect(),
            },
        },
    }
}

fn fuzz_message(f: &mut Fuzz) -> RekeyMessage {
    RekeyMessage {
        recipients: fuzz_recipients(f),
        bundles: (0..f.below(8)).map(|_| fuzz_bundle(f)).collect(),
    }
}

fn fuzz_rekey_packet(f: &mut Fuzz) -> RekeyPacket {
    RekeyPacket {
        seq: f.value(),
        op: ALL_OPS[f.below(4) as usize],
        timestamp_ms: f.value(),
        message: fuzz_message(f),
        auth: fuzz_auth(f),
    }
}

fn fuzz_batch_packet(f: &mut Fuzz) -> BatchRekeyPacket {
    BatchRekeyPacket {
        interval: f.value(),
        timestamp_ms: f.value(),
        joins: f.value() as u32,
        leaves: f.value() as u32,
        message: fuzz_message(f),
        auth: fuzz_auth(f),
    }
}

fn fuzz_derived_packet(f: &mut Fuzz) -> DerivedRekeyPacket {
    DerivedRekeyPacket {
        seq: f.value(),
        interval: f.value(),
        op: ALL_OPS[f.below(4) as usize],
        timestamp_ms: f.value(),
        code: f.bytes(32),
        changed: (0..f.below(8))
            .map(|_| DerivedLink { new_ref: fuzz_key_ref(f), from: fuzz_key_ref(f) })
            .collect(),
        messages: (0..f.below(4)).map(|_| fuzz_message(f)).collect(),
        auth: fuzz_auth(f),
    }
}

fn fuzz_control_message(f: &mut Fuzz) -> ControlMessage {
    match f.below(6) {
        0 => ControlMessage::JoinRequest { user: UserId(f.value()) },
        1 => ControlMessage::JoinGranted {
            user: UserId(f.value()),
            leaf_label: KeyLabel(f.value()),
            path_labels: (0..f.below(6)).map(|_| KeyLabel(f.value())).collect(),
        },
        2 => ControlMessage::JoinDenied { user: UserId(f.value()) },
        3 => ControlMessage::LeaveRequest { user: UserId(f.value()), auth: f.bytes(32) },
        4 => ControlMessage::LeaveGranted { user: UserId(f.value()) },
        _ => ControlMessage::LeaveDenied { user: UserId(f.value()) },
    }
}

fn fuzz_trace_span(f: &mut Fuzz) -> TraceSpan {
    let start = f.value();
    TraceSpan {
        trace_id: f.value(),
        span_id: f.value(),
        parent_span: f.value(),
        hop: f.value() as u8,
        path: f.string(48),
        start_us: start,
        end_us: start.saturating_add(f.below(1 << 20)),
    }
}

fn fuzz_telemetry_snapshot(f: &mut Fuzz) -> TelemetrySnapshot {
    TelemetrySnapshot {
        seq: f.value(),
        at_us: f.value(),
        counters: (0..f.below(6)).map(|_| (f.string(40), f.value())).collect(),
        gauges: (0..f.below(6)).map(|_| (f.string(40), f.value() as i64)).collect(),
        hists: (0..f.below(4))
            .map(|_| {
                (
                    f.string(40),
                    HistogramSnapshot {
                        count: f.value(),
                        sum: f.value(),
                        min: f.value(),
                        max: f.value(),
                        p50: f.value(),
                        p90: f.value(),
                        p99: f.value(),
                    },
                )
            })
            .collect(),
        spans: (0..f.below(5)).map(|_| fuzz_trace_span(f)).collect(),
    }
}

fn fuzz_cluster_envelope(f: &mut Fuzz) -> ClusterEnvelope {
    let body = match f.below(14) {
        0 => ClusterBody::Control(fuzz_control_message(f)),
        1 => ClusterBody::Grant {
            user: UserId(f.value()),
            key: f.bytes(32),
            leaf_label: KeyLabel(f.value()),
            path_labels: (0..f.below(6)).map(|_| KeyLabel(f.value())).collect(),
        },
        2 => ClusterBody::RekeyGroup { payload: f.bytes(128) },
        3 => ClusterBody::RekeyUsers {
            users: (0..f.below(8)).map(|_| UserId(f.value())).collect(),
            payload: f.bytes(128),
        },
        4 => ClusterBody::Refresh,
        5 => ClusterBody::Shutdown,
        6 => ClusterBody::ShutdownAck { members: f.value(), wal_tail: f.value() },
        7 => ClusterBody::StatsRequest,
        8 => ClusterBody::StatsReport {
            members: f.value(),
            intervals: f.value(),
            requests: f.value(),
            encryptions: f.value(),
            pending: f.value(),
        },
        9 => ClusterBody::Telemetry { snapshot: fuzz_telemetry_snapshot(f) },
        10 => ClusterBody::MetricsRequest { format: f.value() as u8 },
        11 => ClusterBody::MetricsReport { text: f.string(200) },
        12 => ClusterBody::TraceRequest { trace_id: f.value() },
        _ => ClusterBody::TraceReport {
            trace_id: f.value(),
            spans: (0..f.below(6)).map(|_| fuzz_trace_span(f)).collect(),
        },
    };
    ClusterEnvelope {
        shard: ShardId(f.value() as u16),
        group: GroupId(f.value() as u32),
        trace: if f.below(2) == 0 {
            None
        } else {
            Some(TraceContext { trace_id: f.value(), parent_span: f.value(), hop: f.value() as u8 })
        },
        body,
    }
}

proptest::proptest! {
    /// Random byte soup never panics any decoder, and anything that does
    /// decode re-encodes to exactly the input (no silent misparses).
    /// Buffers up to 2 KiB reach the interior length-prefixed fields
    /// that short garbage can't.
    #[test]
    fn random_garbage_never_misparses(data in proptest::collection::vec(0u8.., 0..2048)) {
        if let Ok((pkt, _)) = RekeyPacket::decode(&data) {
            proptest::prop_assert_eq!(pkt.encode(), data.clone());
            // encode ∘ decode is idempotent: a second trip is a fixed point.
            let (again, _) = RekeyPacket::decode(&pkt.encode()).expect("re-decode");
            proptest::prop_assert_eq!(again, pkt);
        }
        if let Ok((pkt, _)) = BatchRekeyPacket::decode(&data) {
            proptest::prop_assert_eq!(pkt.encode(), data.clone());
            let (again, _) = BatchRekeyPacket::decode(&pkt.encode()).expect("re-decode");
            proptest::prop_assert_eq!(again, pkt);
        }
        if let Ok((pkt, _)) = DerivedRekeyPacket::decode(&data) {
            proptest::prop_assert_eq!(pkt.encode(), data.clone());
            let (again, _) = DerivedRekeyPacket::decode(&pkt.encode()).expect("re-decode");
            proptest::prop_assert_eq!(again, pkt);
        }
        if let Ok(msg) = ControlMessage::decode(&data) {
            proptest::prop_assert_eq!(msg.encode(), data.clone());
            let again = ControlMessage::decode(&msg.encode()).expect("re-decode");
            proptest::prop_assert_eq!(again, msg);
        }
        if let Ok(env) = ClusterEnvelope::decode(&data) {
            proptest::prop_assert_eq!(env.encode(), data);
            let again = ClusterEnvelope::decode(&env.encode()).expect("re-decode");
            proptest::prop_assert_eq!(again, env);
        }
    }

    /// Arbitrary *structured* packets — random field values biased
    /// toward boundary extremes, random collection sizes — round-trip
    /// through encode/decode unchanged, for every message type.
    #[test]
    fn arbitrary_structured_packets_roundtrip(seed in 0u64..) {
        let f = &mut Fuzz::new(seed);

        let pkt = fuzz_rekey_packet(f);
        let bytes = pkt.encode();
        proptest::prop_assert_eq!(bytes.len(), pkt.wire_len());
        let (decoded, body_len) = RekeyPacket::decode(&bytes).expect("valid rekey encoding");
        proptest::prop_assert_eq!(decoded, pkt.clone());
        proptest::prop_assert_eq!(&bytes[..body_len], pkt.encode_body().as_slice());

        let pkt = fuzz_batch_packet(f);
        let bytes = pkt.encode();
        proptest::prop_assert!(BatchRekeyPacket::sniff(&bytes));
        proptest::prop_assert_eq!(bytes.len(), pkt.wire_len());
        let (decoded, body_len) = BatchRekeyPacket::decode(&bytes).expect("valid batch encoding");
        proptest::prop_assert_eq!(decoded, pkt.clone());
        proptest::prop_assert_eq!(&bytes[..body_len], pkt.encode_body().as_slice());

        let pkt = fuzz_derived_packet(f);
        let bytes = pkt.encode();
        proptest::prop_assert!(DerivedRekeyPacket::sniff(&bytes));
        proptest::prop_assert_eq!(bytes.len(), pkt.wire_len());
        let (decoded, body_len) =
            DerivedRekeyPacket::decode(&bytes).expect("valid derived encoding");
        proptest::prop_assert_eq!(decoded, pkt.clone());
        proptest::prop_assert_eq!(&bytes[..body_len], pkt.encode_body().as_slice());

        let msg = fuzz_control_message(f);
        let decoded = ControlMessage::decode(&msg.encode()).expect("valid control encoding");
        proptest::prop_assert_eq!(decoded, msg);

        let env = fuzz_cluster_envelope(f);
        let bytes = env.encode();
        proptest::prop_assert!(ClusterEnvelope::sniff(&bytes));
        let decoded = ClusterEnvelope::decode(&bytes).expect("valid cluster encoding");
        proptest::prop_assert_eq!(decoded, env);
    }

    /// Mutations of *valid* frames — spliced garbage windows, random
    /// truncation, appended tails — never panic a decoder and never
    /// silently misparse: whatever still decodes re-encodes to exactly
    /// the mutated bytes. Seeding from valid frames drives the fuzz
    /// deeper into the decoders than raw garbage can reach.
    #[test]
    fn mutated_valid_frames_never_misparse(seed in 0u64..) {
        let f = &mut Fuzz::new(seed);
        let mut frames = vec![fuzz_rekey_packet(f).encode(), fuzz_batch_packet(f).encode(),
            fuzz_derived_packet(f).encode(), fuzz_control_message(f).encode(),
            fuzz_cluster_envelope(f).encode()];
        for bytes in &mut frames {
            match f.below(3) {
                // Overwrite a random window with garbage.
                0 => {
                    if !bytes.is_empty() {
                        let start = f.below(bytes.len() as u64) as usize;
                        let end = (start + f.below(16) as usize + 1).min(bytes.len());
                        for b in &mut bytes[start..end] {
                            *b = f.next() as u8;
                        }
                    }
                }
                // Truncate at a random point.
                1 => {
                    let cut = f.below(bytes.len() as u64 + 1) as usize;
                    bytes.truncate(cut);
                }
                // Append a random tail.
                _ => {
                    let tail = f.bytes(32);
                    bytes.extend_from_slice(&tail);
                }
            }
        }
        for bytes in &frames {
            if let Ok((pkt, _)) = RekeyPacket::decode(bytes) {
                proptest::prop_assert_eq!(pkt.encode(), bytes.clone());
            }
            if let Ok((pkt, _)) = BatchRekeyPacket::decode(bytes) {
                proptest::prop_assert_eq!(pkt.encode(), bytes.clone());
            }
            if let Ok((pkt, _)) = DerivedRekeyPacket::decode(bytes) {
                proptest::prop_assert_eq!(pkt.encode(), bytes.clone());
            }
            if let Ok(msg) = ControlMessage::decode(bytes) {
                proptest::prop_assert_eq!(msg.encode(), bytes.clone());
            }
            if let Ok(env) = ClusterEnvelope::decode(bytes) {
                proptest::prop_assert_eq!(env.encode(), bytes.clone());
            }
        }
    }
}
