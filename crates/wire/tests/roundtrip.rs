//! Exhaustive wire-format conformance tests.
//!
//! Every message variant the protocol can produce must (a) round-trip
//! through encode/decode unchanged, and (b) reject — never panic on —
//! truncated or bit-flipped frames. The unit tests inside `kg-wire` spot
//! check individual variants; this suite enumerates the full cross
//! product: every `OpKind` × every `Recipients` × every `AuthTag` for
//! [`RekeyPacket`], every `AuthTag` for [`BatchRekeyPacket`], and every
//! [`ControlMessage`] variant.

use kg_core::ids::{KeyLabel, KeyRef, KeyVersion, UserId};
use kg_core::merkle::{AuthPath, Side};
use kg_core::rekey::{KeyBundle, Recipients, RekeyMessage};
use kg_wire::{AuthTag, BatchRekeyPacket, ControlMessage, OpKind, RekeyPacket};

const ALL_OPS: [OpKind; 4] = [OpKind::Join, OpKind::Leave, OpKind::Batch, OpKind::Refresh];

fn all_recipients() -> Vec<Recipients> {
    vec![
        Recipients::User(UserId(7)),
        Recipients::Subgroup(KeyLabel(3)),
        Recipients::SubgroupExcept { include: KeyLabel(4), exclude: KeyLabel(11) },
        Recipients::Group,
    ]
}

fn all_auth_tags() -> Vec<AuthTag> {
    vec![
        AuthTag::None,
        AuthTag::Digest(vec![0x11; 16]),
        AuthTag::Signed { signature: vec![0x22; 64] },
        AuthTag::MerkleSigned {
            root_signature: vec![0x33; 64],
            path: AuthPath {
                index: 5,
                siblings: vec![(Side::Left, vec![0x44; 16]), (Side::Right, vec![0x55; 16])],
            },
        },
    ]
}

fn bundle(n: u64) -> KeyBundle {
    KeyBundle {
        targets: vec![
            KeyRef::new(KeyLabel(n), KeyVersion(n % 4)),
            KeyRef::new(KeyLabel(n + 1), KeyVersion(0)),
        ],
        encrypted_with: KeyRef::new(KeyLabel(100 + n), KeyVersion(2)),
        iv: vec![n as u8; 8],
        ciphertext: vec![0xC3; 16 + (n as usize % 3) * 8],
    }
}

/// Every distinct rekey packet shape: 4 ops × 4 recipients × 4 auths,
/// with bundle counts varying 0..=2 so the empty case is covered too.
fn all_rekey_packets() -> Vec<RekeyPacket> {
    let mut packets = Vec::new();
    for (i, op) in ALL_OPS.into_iter().enumerate() {
        for (j, recipients) in all_recipients().into_iter().enumerate() {
            for (k, auth) in all_auth_tags().into_iter().enumerate() {
                let nbundles = (i + j + k) % 3;
                packets.push(RekeyPacket {
                    seq: (i * 100 + j * 10 + k) as u64,
                    op,
                    timestamp_ms: 1_000 + k as u64,
                    message: RekeyMessage {
                        recipients: recipients.clone(),
                        bundles: (0..nbundles).map(|b| bundle(b as u64)).collect(),
                    },
                    auth,
                });
            }
        }
    }
    packets
}

fn all_batch_packets() -> Vec<BatchRekeyPacket> {
    all_auth_tags()
        .into_iter()
        .enumerate()
        .map(|(k, auth)| BatchRekeyPacket {
            interval: 40 + k as u64,
            timestamp_ms: 9_000 + k as u64,
            joins: k as u32,
            leaves: 5 - k as u32,
            message: RekeyMessage {
                recipients: Recipients::Group,
                bundles: (0..k).map(|b| bundle(b as u64)).collect(),
            },
            auth,
        })
        .collect()
}

fn all_control_messages() -> Vec<ControlMessage> {
    vec![
        ControlMessage::JoinRequest { user: UserId(1) },
        ControlMessage::JoinGranted {
            user: UserId(2),
            leaf_label: KeyLabel(17),
            path_labels: vec![KeyLabel(0), KeyLabel(3), KeyLabel(9)],
        },
        ControlMessage::JoinDenied { user: UserId(3) },
        ControlMessage::LeaveRequest { user: UserId(4), auth: vec![0xAA; 16] },
        ControlMessage::LeaveGranted { user: UserId(5) },
        ControlMessage::LeaveDenied { user: UserId(6) },
    ]
}

#[test]
fn every_rekey_packet_variant_roundtrips() {
    let packets = all_rekey_packets();
    assert_eq!(packets.len(), 64, "4 ops x 4 recipients x 4 auths");
    for pkt in packets {
        let bytes = pkt.encode();
        assert_eq!(bytes.len(), pkt.wire_len(), "{pkt:?}");
        let (decoded, body_len) = RekeyPacket::decode(&bytes).expect("valid encoding");
        assert_eq!(decoded, pkt);
        assert_eq!(&bytes[..body_len], pkt.encode_body().as_slice());
    }
}

#[test]
fn every_batch_packet_variant_roundtrips() {
    for pkt in all_batch_packets() {
        let bytes = pkt.encode();
        assert!(BatchRekeyPacket::sniff(&bytes));
        assert_eq!(bytes.len(), pkt.wire_len(), "{pkt:?}");
        let (decoded, body_len) = BatchRekeyPacket::decode(&bytes).expect("valid encoding");
        assert_eq!(decoded, pkt);
        assert_eq!(&bytes[..body_len], pkt.encode_body().as_slice());
    }
}

#[test]
fn every_control_message_variant_roundtrips() {
    for msg in all_control_messages() {
        let decoded = ControlMessage::decode(&msg.encode()).expect("valid encoding");
        assert_eq!(decoded, msg);
    }
}

/// Every strict prefix of a valid frame must decode to an error. The
/// encodings are deterministic with no optional trailing fields, so a
/// truncated frame can never be mistaken for a complete one.
#[test]
fn truncation_always_errors_never_panics() {
    for pkt in all_rekey_packets() {
        let bytes = pkt.encode();
        for cut in 0..bytes.len() {
            assert!(RekeyPacket::decode(&bytes[..cut]).is_err(), "cut {cut} of {pkt:?}");
        }
    }
    for pkt in all_batch_packets() {
        let bytes = pkt.encode();
        for cut in 0..bytes.len() {
            assert!(BatchRekeyPacket::decode(&bytes[..cut]).is_err(), "cut {cut} of {pkt:?}");
        }
    }
    for msg in all_control_messages() {
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            assert!(ControlMessage::decode(&bytes[..cut]).is_err(), "cut {cut} of {msg:?}");
        }
    }
}

/// Flipping any single bit of a valid frame must either produce a typed
/// decode error or decode to a message whose canonical re-encoding equals
/// the flipped bytes (a different but well-formed frame, e.g. a changed
/// user id). Silently misparsing — decoding to something that would
/// encode differently — is the failure mode this guards against, and
/// panicking is never acceptable.
#[test]
fn bit_flips_never_misparse_or_panic() {
    for pkt in all_rekey_packets() {
        let bytes = pkt.encode();
        for pos in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[pos / 8] ^= 1 << (pos % 8);
            if let Ok((decoded, _)) = RekeyPacket::decode(&flipped) {
                assert_eq!(decoded.encode(), flipped, "bit {pos} of {pkt:?}");
            }
        }
    }
    for pkt in all_batch_packets() {
        let bytes = pkt.encode();
        for pos in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[pos / 8] ^= 1 << (pos % 8);
            if let Ok((decoded, _)) = BatchRekeyPacket::decode(&flipped) {
                assert_eq!(decoded.encode(), flipped, "bit {pos} of {pkt:?}");
            }
        }
    }
    for msg in all_control_messages() {
        let bytes = msg.encode();
        for pos in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[pos / 8] ^= 1 << (pos % 8);
            if let Ok(decoded) = ControlMessage::decode(&flipped) {
                assert_eq!(decoded.encode(), flipped, "bit {pos} of {msg:?}");
            }
        }
    }
}

proptest::proptest! {
    /// Random byte soup never panics any decoder, and anything that does
    /// decode re-encodes to exactly the input (no silent misparses).
    #[test]
    fn random_garbage_never_misparses(data in proptest::collection::vec(0u8.., 0..256)) {
        if let Ok((pkt, _)) = RekeyPacket::decode(&data) {
            proptest::prop_assert_eq!(pkt.encode(), data.clone());
        }
        if let Ok((pkt, _)) = BatchRekeyPacket::decode(&data) {
            proptest::prop_assert_eq!(pkt.encode(), data.clone());
        }
        if let Ok(msg) = ControlMessage::decode(&data) {
            proptest::prop_assert_eq!(msg.encode(), data);
        }
    }
}
