//! # kg-wire — wire formats for the key-graphs prototype
//!
//! Binary message formats exchanged between the group key server and
//! clients: `join`/`join-ack`/`leave`/`leave-ack` control messages and
//! rekey packets carrying encrypted key bundles, subgroup labels, a
//! timestamp, and one of four authenticity tags (none / MD5 digest /
//! per-message RSA signature / Section-4 Merkle batch signature).
//!
//! Everything is length-prefixed big-endian with strict bounds checking —
//! hostile input cannot trigger large allocations or panics, and any
//! trailing bytes are rejected. Byte counts reported by the benchmark
//! harness are the true encoded sizes produced here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod codec;
pub mod message;
pub mod telemetry;

pub use cluster::{
    ClusterBody, ClusterEnvelope, GroupId, ShardId, CLUSTER_MAGIC, CLUSTER_VERSION, ROUTER_SHARD,
};
pub use message::{
    AuthTag, BatchRekeyPacket, ControlMessage, DerivedRekeyPacket, OpKind, RekeyPacket,
    BATCH_MAGIC, DERIVED_MAGIC, DERIVED_VERSION,
};
pub use telemetry::TelemetrySnapshot;

use std::fmt;

/// Errors from decoding wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the message was complete.
    Truncated,
    /// A length or count field exceeded its bound.
    FieldTooLong {
        /// Claimed length.
        len: usize,
        /// Permitted maximum.
        max: usize,
    },
    /// An enum tag byte was not recognized.
    BadTag {
        /// Which field was being decoded.
        context: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// Bytes remained after a complete message.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::FieldTooLong { len, max } => {
                write!(f, "field length {len} exceeds maximum {max}")
            }
            WireError::BadTag { context, tag } => write!(f, "bad tag {tag} decoding {context}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(WireError::FieldTooLong { len: 10, max: 5 }.to_string().contains("10"));
        assert!(WireError::BadTag { context: "x", tag: 9 }.to_string().contains('9'));
        assert!(WireError::TrailingBytes(3).to_string().contains('3'));
    }
}
