//! Cluster-plane messages: the envelope spoken between shard nodes, the
//! router, and the admin tool.
//!
//! A sharded deployment (see `kg-cluster`) splits the single key server of
//! the paper into N `GroupKeyServer` shard instances behind a router. The
//! router speaks the ordinary client protocol ([`ControlMessage`], rekey
//! packets) towards members, and this envelope towards shards and
//! administrators. Every envelope carries:
//!
//! * a **magic** byte ([`CLUSTER_MAGIC`]) so envelopes can never be
//!   confused with client-plane traffic (control tags are ≤ 5, the batch
//!   rekey magic is `0xB5`),
//! * a **version** byte ([`CLUSTER_VERSION`]) so heterogeneous nodes fail
//!   closed with a typed error instead of misparsing,
//! * the **shard id** the message concerns and the **group id** it applies
//!   to — the routing key of the whole cluster layer.
//!
//! Rekey payloads ride inside [`ClusterBody::RekeyGroup`] /
//! [`ClusterBody::RekeyUsers`] as opaque trailing bytes: the router relays
//! them to members verbatim, so the client-side packet formats (and their
//! authenticity tags) are untouched by sharding.

use crate::codec::{get_bytes, get_count, get_u32, get_u64, get_u8, put_bytes};
use crate::message::ControlMessage;
use crate::telemetry::{get_span, put_span, TelemetrySnapshot};
use crate::WireError;
use bytes::BufMut;
use kg_core::ids::{KeyLabel, UserId};
use kg_obs::{TraceContext, TraceSpan};

/// Identifies a shard (one `GroupKeyServer` instance) within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardId(pub u16);

/// Identifies a key-graph group hosted by the cluster. The single-server
/// deployments of earlier layers implicitly served one group; the cluster
/// routes many, each sharded independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// Pseudo shard id addressing the router itself (admin shutdown).
pub const ROUTER_SHARD: ShardId = ShardId(u16::MAX);

/// First byte of every encoded [`ClusterEnvelope`].
pub const CLUSTER_MAGIC: u8 = 0xC7;

/// Cluster protocol version; receivers reject every other value.
///
/// Version history: 1 = PR 5's original envelope; 2 added the flags
/// byte (optional trace context) and the telemetry-plane bodies.
/// Version-1 frames are rejected closed, like any other mismatch.
pub const CLUSTER_VERSION: u8 = 2;

/// Header flag bit: a trace context follows the group id.
const FLAG_TRACE: u8 = 0x01;

/// The payload of a [`ClusterEnvelope`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterBody {
    /// A client-plane control message tunnelled through the router: a
    /// join/leave request on the way in, or the grant/deny ack on the way
    /// back out.
    Control(ControlMessage),
    /// Shard → router → member: the out-of-band half of a join grant (the
    /// member's individual key and key-tree position). In the paper this
    /// rides the authenticated unicast join exchange; the demo cluster
    /// relays it in the clear over loopback.
    Grant {
        /// The admitted member.
        user: UserId,
        /// The member's individual key material.
        key: Vec<u8>,
        /// Label of the member's leaf k-node.
        leaf_label: KeyLabel,
        /// Labels of the path keys, root-first.
        path_labels: Vec<KeyLabel>,
    },
    /// Shard → router: relay an encoded rekey packet to this shard
    /// subtree's entire membership (subgroup multicast). The payload is
    /// the trailing bytes of the datagram — opaque here, decoded by
    /// members as a `RekeyPacket`/`BatchRekeyPacket`.
    RekeyGroup {
        /// Encoded client-plane rekey packet.
        payload: Vec<u8>,
    },
    /// Shard → router: relay an encoded rekey packet to an explicit set
    /// of members (the §7 "subgroup multicast via unicast" fallback).
    RekeyUsers {
        /// The members addressed.
        users: Vec<UserId>,
        /// Encoded client-plane rekey packet (trailing bytes).
        payload: Vec<u8>,
    },
    /// Admin → shard: rotate the group key (a no-membership-change
    /// refresh, as after suspected compromise or on a timer).
    Refresh,
    /// Admin → shard or router: flush the batch queue, write a final
    /// snapshot, fsync, acknowledge, exit.
    Shutdown,
    /// Shard/router → admin: clean-shutdown confirmation.
    ShutdownAck {
        /// Members still in this shard's slice of the group at shutdown.
        members: u64,
        /// WAL records a restart would replay; 0 proves the final
        /// snapshot landed.
        wal_tail: u64,
    },
    /// Admin → shard: report the counters below.
    StatsRequest,
    /// Shard → admin: a point-in-time summary of one shard's slice.
    StatsReport {
        /// Current member count.
        members: u64,
        /// Batch intervals flushed.
        intervals: u64,
        /// Control requests processed (joins + leaves + refreshes).
        requests: u64,
        /// Key encryptions performed (the paper's server-cost unit).
        encryptions: u64,
        /// Requests queued awaiting the next batch flush.
        pending: u64,
    },
    /// Node → router: the periodic telemetry push (delta counters,
    /// absolute gauges/histogram digests, trace-span tail).
    Telemetry {
        /// The snapshot itself.
        snapshot: TelemetrySnapshot,
    },
    /// Admin → router: render the merged cluster-wide metrics view.
    MetricsRequest {
        /// 0 = Prometheus text exposition, 1 = JSON.
        format: u8,
    },
    /// Router → admin: the rendered merged view (truncated to the
    /// transport datagram budget if necessary).
    MetricsReport {
        /// Rendered text in the requested format.
        text: String,
    },
    /// Admin → router: fetch a reassembled trace.
    TraceRequest {
        /// Trace id to fetch; 0 means "the latest fully stitched one".
        trace_id: u64,
    },
    /// Router → admin: the span records of one trace.
    TraceReport {
        /// The trace the spans belong to (0 = nothing matched).
        trace_id: u64,
        /// All recorded spans, across processes.
        spans: Vec<TraceSpan>,
    },
}

/// The versioned, shard-addressed datagram wrapper of the cluster plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterEnvelope {
    /// The shard this message concerns: the addressee for requests, the
    /// originator for replies and rekey relays.
    pub shard: ShardId,
    /// The group the message applies to (ignored for node-level bodies
    /// like [`ClusterBody::Shutdown`]; 0 by convention there).
    pub group: GroupId,
    /// Distributed-trace context, when this frame belongs to a traced
    /// request (see `kg_obs::trace`). Absent on untraced traffic, so
    /// tracing costs zero header bytes when disabled.
    pub trace: Option<TraceContext>,
    /// The payload.
    pub body: ClusterBody,
}

impl ClusterEnvelope {
    /// An untraced envelope (the common case for admin and telemetry
    /// traffic).
    pub fn new(shard: ShardId, group: GroupId, body: ClusterBody) -> Self {
        ClusterEnvelope { shard, group, trace: None, body }
    }

    /// Whether `bytes` leads with the cluster magic byte.
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.first() == Some(&CLUSTER_MAGIC)
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.put_u8(CLUSTER_MAGIC);
        out.put_u8(CLUSTER_VERSION);
        out.put_u16(self.shard.0);
        out.put_u32(self.group.0);
        match &self.trace {
            None => out.put_u8(0),
            Some(t) => {
                out.put_u8(FLAG_TRACE);
                out.put_u64(t.trace_id);
                out.put_u64(t.parent_span);
                out.put_u8(t.hop);
            }
        }
        match &self.body {
            ClusterBody::Control(msg) => {
                out.put_u8(0);
                put_bytes(&mut out, &msg.encode());
            }
            ClusterBody::Grant { user, key, leaf_label, path_labels } => {
                out.put_u8(1);
                out.put_u64(user.0);
                put_bytes(&mut out, key);
                out.put_u64(leaf_label.0);
                out.put_u32(path_labels.len() as u32);
                for l in path_labels {
                    out.put_u64(l.0);
                }
            }
            ClusterBody::RekeyGroup { payload } => {
                out.put_u8(2);
                out.put_slice(payload);
            }
            ClusterBody::RekeyUsers { users, payload } => {
                out.put_u8(3);
                out.put_u32(users.len() as u32);
                for u in users {
                    out.put_u64(u.0);
                }
                out.put_slice(payload);
            }
            ClusterBody::Refresh => out.put_u8(4),
            ClusterBody::Shutdown => out.put_u8(5),
            ClusterBody::ShutdownAck { members, wal_tail } => {
                out.put_u8(6);
                out.put_u64(*members);
                out.put_u64(*wal_tail);
            }
            ClusterBody::StatsRequest => out.put_u8(7),
            ClusterBody::StatsReport { members, intervals, requests, encryptions, pending } => {
                out.put_u8(8);
                out.put_u64(*members);
                out.put_u64(*intervals);
                out.put_u64(*requests);
                out.put_u64(*encryptions);
                out.put_u64(*pending);
            }
            ClusterBody::Telemetry { snapshot } => {
                out.put_u8(9);
                snapshot.encode_into(&mut out);
            }
            ClusterBody::MetricsRequest { format } => {
                out.put_u8(10);
                out.put_u8(*format);
            }
            ClusterBody::MetricsReport { text } => {
                out.put_u8(11);
                put_bytes(&mut out, text.as_bytes());
            }
            ClusterBody::TraceRequest { trace_id } => {
                out.put_u8(12);
                out.put_u64(*trace_id);
            }
            ClusterBody::TraceReport { trace_id, spans } => {
                out.put_u8(13);
                out.put_u64(*trace_id);
                out.put_u32(spans.len() as u32);
                for s in spans {
                    put_span(&mut out, s);
                }
            }
        }
        out
    }

    /// Deserialize. Never panics; unknown magic/version/tag bytes come
    /// back as [`WireError::BadTag`] with the offending context.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut buf = bytes;
        match get_u8(&mut buf)? {
            CLUSTER_MAGIC => {}
            t => return Err(WireError::BadTag { context: "cluster magic", tag: t }),
        }
        match get_u8(&mut buf)? {
            CLUSTER_VERSION => {}
            t => return Err(WireError::BadTag { context: "cluster version", tag: t }),
        }
        let shard = ShardId(get_u16(&mut buf)?);
        let group = GroupId(get_u32(&mut buf)?);
        let flags = get_u8(&mut buf)?;
        if flags & !FLAG_TRACE != 0 {
            // Unknown flag bits fail closed: a future sender that set
            // them meant something this decoder cannot honor.
            return Err(WireError::BadTag { context: "cluster flags", tag: flags });
        }
        let trace = if flags & FLAG_TRACE != 0 {
            Some(TraceContext {
                trace_id: get_u64(&mut buf)?,
                parent_span: get_u64(&mut buf)?,
                hop: get_u8(&mut buf)?,
            })
        } else {
            None
        };
        let body = match get_u8(&mut buf)? {
            0 => {
                let inner = get_bytes(&mut buf)?;
                ClusterBody::Control(ControlMessage::decode(&inner)?)
            }
            1 => {
                let user = UserId(get_u64(&mut buf)?);
                let key = get_bytes(&mut buf)?;
                let leaf_label = KeyLabel(get_u64(&mut buf)?);
                let n = get_count(&mut buf)?;
                let mut path_labels = Vec::with_capacity(n);
                for _ in 0..n {
                    path_labels.push(KeyLabel(get_u64(&mut buf)?));
                }
                ClusterBody::Grant { user, key, leaf_label, path_labels }
            }
            2 => {
                // The payload is the remainder of the datagram: rekey
                // bundles for large batch intervals exceed the bounded
                // byte-string field limit by design.
                let payload = buf.to_vec();
                buf = &[];
                ClusterBody::RekeyGroup { payload }
            }
            3 => {
                let n = get_count(&mut buf)?;
                let mut users = Vec::with_capacity(n);
                for _ in 0..n {
                    users.push(UserId(get_u64(&mut buf)?));
                }
                let payload = buf.to_vec();
                buf = &[];
                ClusterBody::RekeyUsers { users, payload }
            }
            4 => ClusterBody::Refresh,
            5 => ClusterBody::Shutdown,
            6 => ClusterBody::ShutdownAck {
                members: get_u64(&mut buf)?,
                wal_tail: get_u64(&mut buf)?,
            },
            7 => ClusterBody::StatsRequest,
            8 => ClusterBody::StatsReport {
                members: get_u64(&mut buf)?,
                intervals: get_u64(&mut buf)?,
                requests: get_u64(&mut buf)?,
                encryptions: get_u64(&mut buf)?,
                pending: get_u64(&mut buf)?,
            },
            9 => ClusterBody::Telemetry { snapshot: TelemetrySnapshot::decode_from(&mut buf)? },
            10 => ClusterBody::MetricsRequest { format: get_u8(&mut buf)? },
            11 => {
                let bytes = get_bytes(&mut buf)?;
                let text = String::from_utf8(bytes).map_err(|e| {
                    let at = e.utf8_error().valid_up_to();
                    WireError::BadTag { context: "metrics report utf-8", tag: e.as_bytes()[at] }
                })?;
                ClusterBody::MetricsReport { text }
            }
            12 => ClusterBody::TraceRequest { trace_id: get_u64(&mut buf)? },
            13 => {
                let trace_id = get_u64(&mut buf)?;
                let n = get_count(&mut buf)?;
                let mut spans = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    spans.push(get_span(&mut buf)?);
                }
                ClusterBody::TraceReport { trace_id, spans }
            }
            t => return Err(WireError::BadTag { context: "cluster body", tag: t }),
        };
        if !buf.is_empty() {
            return Err(WireError::TrailingBytes(buf.len()));
        }
        Ok(ClusterEnvelope { shard, group, trace, body })
    }
}

fn get_u16(buf: &mut &[u8]) -> Result<u16, WireError> {
    let hi = get_u8(buf)?;
    let lo = get_u8(buf)?;
    Ok(u16::from_be_bytes([hi, lo]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bodies() -> Vec<ClusterBody> {
        vec![
            ClusterBody::Control(ControlMessage::JoinRequest { user: UserId(7) }),
            ClusterBody::Control(ControlMessage::LeaveRequest {
                user: UserId(9),
                auth: vec![1, 2, 3, 4],
            }),
            ClusterBody::Grant {
                user: UserId(12),
                key: vec![0xAA; 16],
                leaf_label: KeyLabel(31),
                path_labels: vec![KeyLabel(0), KeyLabel(3), KeyLabel(15)],
            },
            ClusterBody::RekeyGroup { payload: vec![0xB5; 40] },
            ClusterBody::RekeyUsers {
                users: vec![UserId(1), UserId(2), UserId(3)],
                payload: vec![0x01; 20],
            },
            ClusterBody::Refresh,
            ClusterBody::Shutdown,
            ClusterBody::ShutdownAck { members: 42, wal_tail: 0 },
            ClusterBody::StatsRequest,
            ClusterBody::StatsReport {
                members: 1000,
                intervals: 4,
                requests: 1010,
                encryptions: 20_000,
                pending: 3,
            },
            ClusterBody::Telemetry {
                snapshot: TelemetrySnapshot {
                    seq: 2,
                    at_us: 500,
                    counters: vec![("kg_requests_total".into(), 9)],
                    gauges: vec![("kg_batch_queue_depth".into(), -1)],
                    hists: Vec::new(),
                    spans: vec![sample_span()],
                },
            },
            ClusterBody::MetricsRequest { format: 0 },
            ClusterBody::MetricsReport { text: "kg_requests_total 9\n".into() },
            ClusterBody::TraceRequest { trace_id: 0 },
            ClusterBody::TraceReport { trace_id: 7, spans: vec![sample_span()] },
        ]
    }

    fn sample_span() -> TraceSpan {
        TraceSpan {
            trace_id: 7,
            span_id: 0xA1,
            parent_span: 0x99,
            hop: 1,
            path: "node.parse.op.leave".into(),
            start_us: 10,
            end_us: 35,
        }
    }

    #[test]
    fn roundtrip_all_bodies() {
        for body in sample_bodies() {
            let env = ClusterEnvelope::new(ShardId(3), GroupId(77), body);
            let bytes = env.encode();
            assert!(ClusterEnvelope::sniff(&bytes));
            assert_eq!(ClusterEnvelope::decode(&bytes).unwrap(), env);
        }
    }

    #[test]
    fn trace_context_roundtrips_on_every_body() {
        let ctx = TraceContext { trace_id: 0xDEAD_BEEF, parent_span: 0x1234, hop: 2 };
        for body in sample_bodies() {
            let env = ClusterEnvelope {
                trace: Some(ctx),
                ..ClusterEnvelope::new(ShardId(1), GroupId(2), body)
            };
            let decoded = ClusterEnvelope::decode(&env.encode()).unwrap();
            assert_eq!(decoded.trace, Some(ctx));
            assert_eq!(decoded, env);
        }
    }

    #[test]
    fn header_carries_version_and_shard() {
        let env = ClusterEnvelope::new(ShardId(0xBEEF), GroupId(5), ClusterBody::Shutdown);
        let bytes = env.encode();
        assert_eq!(bytes[0], CLUSTER_MAGIC);
        assert_eq!(bytes[1], CLUSTER_VERSION);
        assert_eq!(u16::from_be_bytes([bytes[2], bytes[3]]), 0xBEEF);
    }

    #[test]
    fn foreign_version_fails_closed() {
        let mut bytes =
            ClusterEnvelope::new(ShardId(0), GroupId(0), ClusterBody::StatsRequest).encode();
        bytes[1] = CLUSTER_VERSION + 1;
        assert_eq!(
            ClusterEnvelope::decode(&bytes),
            Err(WireError::BadTag { context: "cluster version", tag: CLUSTER_VERSION + 1 })
        );
    }

    #[test]
    fn version_one_frames_are_rejected_closed() {
        // A well-formed frame from a PR-5 (version 1) peer: no flags
        // byte, body tag directly after the group id. The v2 decoder
        // must reject it on the version byte alone — body tag 7
        // (StatsRequest) would otherwise misparse as a flags byte.
        let v1_stats_request = [CLUSTER_MAGIC, 1, 0, 3, 0, 0, 0, 9, 7];
        assert_eq!(
            ClusterEnvelope::decode(&v1_stats_request),
            Err(WireError::BadTag { context: "cluster version", tag: 1 })
        );
        // Same for a v1 Shutdown aimed at the router.
        let v1_shutdown = [CLUSTER_MAGIC, 1, 0xFF, 0xFF, 0, 0, 0, 0, 5];
        assert_eq!(
            ClusterEnvelope::decode(&v1_shutdown),
            Err(WireError::BadTag { context: "cluster version", tag: 1 })
        );
    }

    #[test]
    fn unknown_flag_bits_fail_closed() {
        let mut bytes =
            ClusterEnvelope::new(ShardId(0), GroupId(0), ClusterBody::StatsRequest).encode();
        bytes[8] |= 0x80; // flags byte sits after magic+version+shard+group
        assert_eq!(
            ClusterEnvelope::decode(&bytes),
            Err(WireError::BadTag { context: "cluster flags", tag: 0x80 })
        );
    }

    #[test]
    fn magic_separates_planes() {
        // Envelopes are never valid control messages and vice versa.
        let env = ClusterEnvelope::new(ShardId(1), GroupId(1), ClusterBody::Refresh);
        assert!(ControlMessage::decode(&env.encode()).is_err());
        let ctl = ControlMessage::JoinRequest { user: UserId(4) }.encode();
        assert!(!ClusterEnvelope::sniff(&ctl));
        assert!(ClusterEnvelope::decode(&ctl).is_err());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        for traced in [false, true] {
            for body in sample_bodies() {
                let mut env = ClusterEnvelope::new(ShardId(2), GroupId(9), body);
                if traced {
                    env.trace = Some(TraceContext { trace_id: 5, parent_span: 6, hop: 1 });
                }
                let bytes = env.encode();
                for cut in 0..bytes.len() {
                    let r = ClusterEnvelope::decode(&bytes[..cut]);
                    // Trailing-payload bodies accept any suffix, so a prefix
                    // that still contains the full fixed part may decode — but
                    // it must then re-encode to exactly that prefix.
                    if let Ok(decoded) = r {
                        assert_eq!(decoded.encode(), &bytes[..cut]);
                    }
                }
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected_for_fixed_bodies() {
        let mut bytes = ClusterEnvelope::new(
            ShardId(0),
            GroupId(0),
            ClusterBody::ShutdownAck { members: 1, wal_tail: 2 },
        )
        .encode();
        bytes.push(0);
        assert_eq!(ClusterEnvelope::decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn tunnelled_control_is_validated() {
        // A Control body whose inner bytes are not a valid control
        // message must fail, not smuggle garbage.
        let mut out = vec![CLUSTER_MAGIC, CLUSTER_VERSION, 0, 0, 0, 0, 0, 1, 0, 0];
        put_bytes(&mut out, &[200, 1, 2]);
        assert!(matches!(
            ClusterEnvelope::decode(&out),
            Err(WireError::BadTag { context: "control message", .. })
        ));
    }

    proptest::proptest! {
        /// Random garbage either fails to decode or re-encodes to itself.
        #[test]
        fn garbage_never_misparses(data in proptest::collection::vec(0u8.., 0..160)) {
            if let Ok(env) = ClusterEnvelope::decode(&data) {
                proptest::prop_assert_eq!(env.encode(), data);
            }
        }

        #[test]
        fn rekey_users_roundtrip_random(
            shard: u16,
            group: u32,
            trace_id: u64,
            users in proptest::collection::vec(0u64.., 0..50),
            payload in proptest::collection::vec(0u8.., 0..200),
        ) {
            let env = ClusterEnvelope {
                shard: ShardId(shard),
                group: GroupId(group),
                trace: if trace_id.is_multiple_of(2) {
                    None
                } else {
                    Some(TraceContext { trace_id, parent_span: trace_id ^ 0xFF, hop: trace_id as u8 })
                },
                body: ClusterBody::RekeyUsers {
                    users: users.into_iter().map(UserId).collect(),
                    payload,
                },
            };
            proptest::prop_assert_eq!(ClusterEnvelope::decode(&env.encode()).unwrap(), env);
        }
    }
}
