//! Low-level encode/decode primitives.
//!
//! The prototype's wire format is a hand-rolled, length-prefixed binary
//! encoding (the paper predates any serialization framework; its rekey
//! messages were packed structs over UDP). Integers are big-endian; byte
//! strings carry a `u32` length prefix; collections a `u32` count.

use crate::WireError;
use bytes::{Buf, BufMut};

/// Maximum length accepted for any single byte-string field (1 MiB) —
/// bounds allocation when decoding hostile input.
pub const MAX_FIELD_LEN: usize = 1 << 20;

/// Maximum element count accepted for any collection field.
pub const MAX_COUNT: usize = 1 << 16;

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    debug_assert!(bytes.len() <= MAX_FIELD_LEN);
    out.put_u32(bytes.len() as u32);
    out.put_slice(bytes);
}

/// Read a length-prefixed byte string.
pub fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>, WireError> {
    let len = get_u32(buf)? as usize;
    if len > MAX_FIELD_LEN {
        return Err(WireError::FieldTooLong { len, max: MAX_FIELD_LEN });
    }
    if buf.remaining() < len {
        return Err(WireError::Truncated);
    }
    let mut v = vec![0u8; len];
    buf.copy_to_slice(&mut v);
    Ok(v)
}

/// Read a `u8`.
pub fn get_u8(buf: &mut &[u8]) -> Result<u8, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u8())
}

/// Read a big-endian `u32`.
pub fn get_u32(buf: &mut &[u8]) -> Result<u32, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u32())
}

/// Read a big-endian `u64`.
pub fn get_u64(buf: &mut &[u8]) -> Result<u64, WireError> {
    if buf.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u64())
}

/// Read a collection count, bounded by [`MAX_COUNT`].
pub fn get_count(buf: &mut &[u8]) -> Result<usize, WireError> {
    let n = get_u32(buf)? as usize;
    if n > MAX_COUNT {
        return Err(WireError::FieldTooLong { len: n, max: MAX_COUNT });
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"hello");
        put_bytes(&mut out, b"");
        let mut buf = out.as_slice();
        assert_eq!(get_bytes(&mut buf).unwrap(), b"hello");
        assert_eq!(get_bytes(&mut buf).unwrap(), b"");
        assert!(buf.is_empty());
    }

    #[test]
    fn truncated_inputs_error() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"hello");
        let mut buf = &out[..out.len() - 1];
        assert_eq!(get_bytes(&mut buf).unwrap_err(), WireError::Truncated);
        let mut buf: &[u8] = &[0, 0];
        assert_eq!(get_u32(&mut buf).unwrap_err(), WireError::Truncated);
        let mut buf: &[u8] = &[];
        assert_eq!(get_u8(&mut buf).unwrap_err(), WireError::Truncated);
        assert_eq!(get_u64(&mut buf).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn hostile_length_rejected() {
        // Claim a 2 GiB string.
        let mut buf: &[u8] = &[0x80, 0, 0, 0, 1, 2, 3];
        assert!(matches!(get_bytes(&mut buf), Err(WireError::FieldTooLong { .. })));
        let mut buf: &[u8] = &[0x00, 0x10, 0, 1];
        assert!(matches!(get_count(&mut buf), Err(WireError::FieldTooLong { .. })));
    }

    #[test]
    fn scalars_roundtrip() {
        let mut out = Vec::new();
        out.put_u8(7);
        out.put_u32(0xDEAD_BEEF);
        out.put_u64(0x0123_4567_89AB_CDEF);
        let mut buf = out.as_slice();
        assert_eq!(get_u8(&mut buf).unwrap(), 7);
        assert_eq!(get_u32(&mut buf).unwrap(), 0xDEAD_BEEF);
        assert_eq!(get_u64(&mut buf).unwrap(), 0x0123_4567_89AB_CDEF);
    }
}
