//! Telemetry-plane payloads: the periodic node → router metrics push
//! and the span records that stitch cross-process traces together.
//!
//! A [`TelemetrySnapshot`] is the bounded unit a shard node ships to
//! the router every telemetry interval. Counters are *delta-encoded*
//! (the change since the previous acked-by-construction snapshot —
//! UDP loss is detected by the receiver via the gap-free `seq` and
//! surfaced as a staleness count rather than silently double-counted
//! absolute values). Gauges and histogram summaries are absolute:
//! last-write-wins is the correct merge for them. The span tail
//! carries the [`TraceSpan`] records appended to the node's timeline
//! since the previous push, which is what lets the router reassemble
//! multi-process traces.
//!
//! Everything uses the same strict length-prefixed codec as the rest
//! of the crate: hostile input produces typed errors, never panics or
//! unbounded allocation.

use crate::codec::{get_bytes, get_count, get_u64, get_u8, put_bytes};
use crate::WireError;
use bytes::BufMut;
use kg_obs::{HistogramSnapshot, TraceSpan};

/// One bounded telemetry push from a shard node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// Gap-free per-node snapshot sequence number (1-based). A gap at
    /// the receiver means pushes were lost and the delta-encoded
    /// counters under-count; the merger tracks this per shard.
    pub seq: u64,
    /// Node-local timestamp of the snapshot, microseconds.
    pub at_us: u64,
    /// Counter *deltas* since the previous snapshot, keyed by rendered
    /// exposition name (`name{label="value"}`).
    pub counters: Vec<(String, u64)>,
    /// Absolute gauge values.
    pub gauges: Vec<(String, i64)>,
    /// Absolute histogram summaries (quantile digests, not buckets).
    pub hists: Vec<(String, HistogramSnapshot)>,
    /// Trace-span records appended to the node timeline since the
    /// previous push.
    pub spans: Vec<TraceSpan>,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, WireError> {
    let bytes = get_bytes(buf)?;
    String::from_utf8(bytes).map_err(|e| {
        let at = e.utf8_error().valid_up_to();
        WireError::BadTag { context: "telemetry utf-8 string", tag: e.as_bytes()[at] }
    })
}

/// Append one encoded [`TraceSpan`].
pub(crate) fn put_span(out: &mut Vec<u8>, s: &TraceSpan) {
    out.put_u64(s.trace_id);
    out.put_u64(s.span_id);
    out.put_u64(s.parent_span);
    out.put_u8(s.hop);
    put_str(out, &s.path);
    out.put_u64(s.start_us);
    out.put_u64(s.end_us);
}

/// Read one encoded [`TraceSpan`].
pub(crate) fn get_span(buf: &mut &[u8]) -> Result<TraceSpan, WireError> {
    Ok(TraceSpan {
        trace_id: get_u64(buf)?,
        span_id: get_u64(buf)?,
        parent_span: get_u64(buf)?,
        hop: get_u8(buf)?,
        path: get_str(buf)?,
        start_us: get_u64(buf)?,
        end_us: get_u64(buf)?,
    })
}

fn put_hist(out: &mut Vec<u8>, h: &HistogramSnapshot) {
    for v in [h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99] {
        out.put_u64(v);
    }
}

fn get_hist(buf: &mut &[u8]) -> Result<HistogramSnapshot, WireError> {
    Ok(HistogramSnapshot {
        count: get_u64(buf)?,
        sum: get_u64(buf)?,
        min: get_u64(buf)?,
        max: get_u64(buf)?,
        p50: get_u64(buf)?,
        p90: get_u64(buf)?,
        p99: get_u64(buf)?,
    })
}

impl TelemetrySnapshot {
    /// Append the encoded snapshot to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u64(self.seq);
        out.put_u64(self.at_us);
        out.put_u32(self.counters.len() as u32);
        for (name, v) in &self.counters {
            put_str(out, name);
            out.put_u64(*v);
        }
        out.put_u32(self.gauges.len() as u32);
        for (name, v) in &self.gauges {
            put_str(out, name);
            out.put_u64(*v as u64);
        }
        out.put_u32(self.hists.len() as u32);
        for (name, h) in &self.hists {
            put_str(out, name);
            put_hist(out, h);
        }
        out.put_u32(self.spans.len() as u32);
        for s in &self.spans {
            put_span(out, s);
        }
    }

    /// Read one snapshot from `buf`, consuming exactly its bytes.
    pub fn decode_from(buf: &mut &[u8]) -> Result<Self, WireError> {
        let seq = get_u64(buf)?;
        let at_us = get_u64(buf)?;
        let n = get_count(buf)?;
        let mut counters = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            counters.push((get_str(buf)?, get_u64(buf)?));
        }
        let n = get_count(buf)?;
        let mut gauges = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            gauges.push((get_str(buf)?, get_u64(buf)? as i64));
        }
        let n = get_count(buf)?;
        let mut hists = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            hists.push((get_str(buf)?, get_hist(buf)?));
        }
        let n = get_count(buf)?;
        let mut spans = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            spans.push(get_span(buf)?);
        }
        Ok(TelemetrySnapshot { seq, at_us, counters, gauges, hists, spans })
    }

    /// Encoded size in bytes — senders use this to stay inside the
    /// transport datagram budget.
    pub fn wire_len(&self) -> usize {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot {
            seq: 3,
            at_us: 1_234_567,
            counters: vec![
                ("kg_requests_total{kind=\"join\"}".into(), 17),
                ("kg_encryptions_total".into(), 420),
            ],
            gauges: vec![("kg_batch_queue_depth".into(), -2)],
            hists: vec![(
                "kg_span_us{span=\"op.join\"}".into(),
                HistogramSnapshot { count: 5, sum: 50, min: 2, max: 30, p50: 8, p90: 28, p99: 30 },
            )],
            spans: vec![TraceSpan {
                trace_id: 0xAB,
                span_id: 0xCD,
                parent_span: 0x12,
                hop: 1,
                path: "node.parse.op.join".into(),
                start_us: 100,
                end_us: 250,
            }],
        }
    }

    #[test]
    fn snapshot_roundtrips() {
        let snap = sample_snapshot();
        let mut bytes = Vec::new();
        snap.encode_into(&mut bytes);
        assert_eq!(bytes.len(), snap.wire_len());
        let mut buf = bytes.as_slice();
        let decoded = TelemetrySnapshot::decode_from(&mut buf).unwrap();
        assert!(buf.is_empty());
        assert_eq!(decoded, snap);
        // Empty snapshot too.
        let empty = TelemetrySnapshot::default();
        let mut bytes = Vec::new();
        empty.encode_into(&mut bytes);
        let mut buf = bytes.as_slice();
        assert_eq!(TelemetrySnapshot::decode_from(&mut buf).unwrap(), empty);
    }

    #[test]
    fn negative_gauges_survive() {
        let snap = TelemetrySnapshot {
            gauges: vec![("g".into(), i64::MIN), ("h".into(), -1)],
            ..TelemetrySnapshot::default()
        };
        let mut bytes = Vec::new();
        snap.encode_into(&mut bytes);
        let decoded = TelemetrySnapshot::decode_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(decoded.gauges, snap.gauges);
    }

    #[test]
    fn invalid_utf8_is_a_typed_error() {
        let snap = TelemetrySnapshot {
            counters: vec![("name".into(), 1)],
            ..TelemetrySnapshot::default()
        };
        let mut bytes = Vec::new();
        snap.encode_into(&mut bytes);
        // Corrupt the first byte of the counter name ("name" starts
        // after seq + at_us + count = 8 + 8 + 4 bytes + 4-byte length).
        bytes[24] = 0xFF;
        let err = TelemetrySnapshot::decode_from(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::BadTag { context: "telemetry utf-8 string", .. }));
    }

    #[test]
    fn truncation_never_panics() {
        let snap = sample_snapshot();
        let mut bytes = Vec::new();
        snap.encode_into(&mut bytes);
        for cut in 0..bytes.len() {
            assert!(TelemetrySnapshot::decode_from(&mut &bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
