//! Protocol messages and their binary encoding.
//!
//! The paper's prototype exchanges `join`, `join-ack`, `leave`, `leave-ack`
//! and rekey messages over UDP; rekey messages additionally carry "subgroup
//! labels for new keys, server digital signature, message integrity check,
//! timestamp, etc." (§3.1). This module defines those messages and a
//! deterministic binary codec, so that the byte counts the benchmark
//! harness reports are real wire sizes, not estimates.

use crate::codec::{get_bytes, get_count, get_u32, get_u64, get_u8, put_bytes};
use crate::WireError;
use bytes::BufMut;
use kg_core::ids::{KeyLabel, KeyRef, KeyVersion, UserId};
use kg_core::merkle::{AuthPath, Side};
use kg_core::rekey::{KeyBundle, Recipients, RekeyMessage};

/// Whether a rekey was triggered by a join or a leave (carried for client
/// statistics; the decryption logic does not depend on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Triggered by a join.
    Join,
    /// Triggered by a leave.
    Leave,
    /// Triggered by a batched rekey interval (joins and leaves together).
    Batch,
    /// A group-key refresh (key-version bump) with no membership change —
    /// periodic rotation, or rotation forced after recovering from a crash.
    Refresh,
}

/// Authentication attached to a rekey message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthTag {
    /// No integrity protection (the paper's "encryption only" runs).
    None,
    /// A message digest over the body (MD5 in the paper).
    Digest(Vec<u8>),
    /// One digital signature per message (the expensive baseline of
    /// Table 4's left half).
    Signed {
        /// RSA signature over the body digest.
        signature: Vec<u8>,
    },
    /// Section 4's technique: the root signature of a digest tree over all
    /// rekey messages of this operation, plus this message's
    /// authentication path.
    MerkleSigned {
        /// Signature over the batch's root digest.
        root_signature: Vec<u8>,
        /// This message's path to the root.
        path: AuthPath,
    },
}

/// A rekey packet as delivered to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RekeyPacket {
    /// Server-assigned sequence number of the triggering operation.
    pub seq: u64,
    /// Join or leave.
    pub op: OpKind,
    /// Server timestamp (milliseconds since an arbitrary epoch; the paper's
    /// format reserves a timestamp field for replay detection).
    pub timestamp_ms: u64,
    /// The rekey content (recipients + encrypted key bundles).
    pub message: RekeyMessage,
    /// Integrity/authenticity tag.
    pub auth: AuthTag,
}

impl RekeyPacket {
    /// Serialize the *body* (everything the digest/signature covers).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.put_u64(self.seq);
        out.put_u8(match self.op {
            OpKind::Join => 0,
            OpKind::Leave => 1,
            OpKind::Batch => 2,
            OpKind::Refresh => 3,
        });
        out.put_u64(self.timestamp_ms);
        encode_recipients(&mut out, &self.message.recipients);
        out.put_u32(self.message.bundles.len() as u32);
        for b in &self.message.bundles {
            encode_bundle(&mut out, b);
        }
        out
    }

    /// Serialize body + auth tag (the full datagram payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.encode_body();
        encode_auth(&mut out, &self.auth);
        out
    }

    /// Total wire length.
    pub fn wire_len(&self) -> usize {
        self.encode().len()
    }

    /// Decode a packet, returning it together with the length of its body
    /// prefix (callers re-digest `bytes[..body_len]` to verify the tag).
    pub fn decode(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        let mut buf = bytes;
        let seq = get_u64(&mut buf)?;
        let op = match get_u8(&mut buf)? {
            0 => OpKind::Join,
            1 => OpKind::Leave,
            2 => OpKind::Batch,
            3 => OpKind::Refresh,
            t => return Err(WireError::BadTag { context: "op kind", tag: t }),
        };
        let timestamp_ms = get_u64(&mut buf)?;
        let recipients = decode_recipients(&mut buf)?;
        let n = get_count(&mut buf)?;
        let mut bundles = Vec::with_capacity(n);
        for _ in 0..n {
            bundles.push(decode_bundle(&mut buf)?);
        }
        let body_len = bytes.len() - buf.len();
        let auth = decode_auth(&mut buf)?;
        if !buf.is_empty() {
            return Err(WireError::TrailingBytes(buf.len()));
        }
        Ok((
            RekeyPacket {
                seq,
                op,
                timestamp_ms,
                message: RekeyMessage { recipients, bundles },
                auth,
            },
            body_len,
        ))
    }
}

/// First byte of every encoded [`BatchRekeyPacket`], distinguishing batch
/// rekeys from legacy per-operation [`RekeyPacket`]s (whose leading byte is
/// the high byte of a realistic sequence number, hence never `0xB5`) and
/// from [`ControlMessage`]s (whose tag byte is ≤ 5).
pub const BATCH_MAGIC: u8 = 0xB5;

/// One rekey message of a batched interval, as delivered to clients.
///
/// A batch interval may produce several of these (one per subgroup under
/// the user- and key-oriented strategies); they all carry the same
/// `interval` so clients can reject stale traffic after a newer interval
/// has been applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRekeyPacket {
    /// Interval sequence number (monotonically increasing, 1-based).
    pub interval: u64,
    /// Server timestamp (logical, as in [`RekeyPacket`]).
    pub timestamp_ms: u64,
    /// Number of joins aggregated into this interval.
    pub joins: u32,
    /// Number of leaves aggregated into this interval.
    pub leaves: u32,
    /// The rekey content (recipients + encrypted multi-key bundles).
    pub message: RekeyMessage,
    /// Integrity/authenticity tag.
    pub auth: AuthTag,
}

impl BatchRekeyPacket {
    /// Whether `bytes` looks like an encoded batch rekey packet.
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.first() == Some(&BATCH_MAGIC)
    }

    /// Serialize the *body* (everything the digest/signature covers).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.put_u8(BATCH_MAGIC);
        out.put_u64(self.interval);
        out.put_u64(self.timestamp_ms);
        out.put_u32(self.joins);
        out.put_u32(self.leaves);
        encode_recipients(&mut out, &self.message.recipients);
        out.put_u32(self.message.bundles.len() as u32);
        for b in &self.message.bundles {
            encode_bundle(&mut out, b);
        }
        out
    }

    /// Serialize body + auth tag (the full datagram payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.encode_body();
        encode_auth(&mut out, &self.auth);
        out
    }

    /// Total wire length.
    pub fn wire_len(&self) -> usize {
        self.encode().len()
    }

    /// Decode a packet, returning it with the length of its body prefix.
    pub fn decode(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        let mut buf = bytes;
        match get_u8(&mut buf)? {
            BATCH_MAGIC => {}
            t => return Err(WireError::BadTag { context: "batch magic", tag: t }),
        }
        let interval = get_u64(&mut buf)?;
        let timestamp_ms = get_u64(&mut buf)?;
        let joins = get_u32(&mut buf)?;
        let leaves = get_u32(&mut buf)?;
        let recipients = decode_recipients(&mut buf)?;
        let n = get_count(&mut buf)?;
        let mut bundles = Vec::with_capacity(n);
        for _ in 0..n {
            bundles.push(decode_bundle(&mut buf)?);
        }
        let body_len = bytes.len() - buf.len();
        let auth = decode_auth(&mut buf)?;
        if !buf.is_empty() {
            return Err(WireError::TrailingBytes(buf.len()));
        }
        Ok((
            BatchRekeyPacket {
                interval,
                timestamp_ms,
                joins,
                leaves,
                message: RekeyMessage { recipients, bundles },
                auth,
            },
            body_len,
        ))
    }
}

/// First byte of every encoded [`DerivedRekeyPacket`]. Distinct from
/// [`BATCH_MAGIC`] (`0xB5`), the cluster envelope magic (`0xC7`), every
/// [`ControlMessage`] tag (≤ 5), and the leading byte of any realistic
/// legacy [`RekeyPacket`] (the high byte of its `u64` sequence number).
pub const DERIVED_MAGIC: u8 = 0xD6;

/// Version byte following [`DERIVED_MAGIC`]. Decoding fails closed on any
/// other value, so the format can evolve without silent misparses.
pub const DERIVED_VERSION: u8 = 1;

/// A `Strategy::Derived` rekey operation, as delivered to clients.
///
/// One packet per operation (join / leave / refresh / batched interval),
/// multicast to the whole group. It carries up to three things:
///
/// * `code` + `changed` — the derivation work list: members holding the
///   key at `changed[i].from` recompute the key at `changed[i].new_ref`
///   via `derive_key(held, code, label, new_version)`. Empty for leaves.
/// * `messages` — shipped ciphertext bundles for whoever *cannot* derive:
///   the joiner's path unicast under its individual key and, for leaves,
///   the group-oriented fallback bundles (forward secrecy — a departed
///   member could run the public derivation too, so evicted-path keys
///   must be fresh and shipped).
///
/// `interval` totally orders derived operations; clients apply each
/// packet atomically and reject anything older than what they already
/// applied, mirroring [`BatchRekeyPacket`]'s staleness rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivedRekeyPacket {
    /// Server-assigned sequence number of the triggering operation.
    pub seq: u64,
    /// Derivation interval (monotonically increasing, 1-based; equals
    /// `seq` in immediate mode, the batch interval in batched mode).
    pub interval: u64,
    /// What triggered the rekey.
    pub op: OpKind,
    /// Server timestamp (logical, as in [`RekeyPacket`]).
    pub timestamp_ms: u64,
    /// Derivation code for this operation (empty when nothing is derived).
    pub code: Vec<u8>,
    /// Derivation work list, root-first.
    pub changed: Vec<kg_core::derive::DerivedLink>,
    /// Shipped bundles for recipients that cannot derive.
    pub messages: Vec<RekeyMessage>,
    /// Integrity/authenticity tag.
    pub auth: AuthTag,
}

impl DerivedRekeyPacket {
    /// Whether `bytes` looks like an encoded derived rekey packet.
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.first() == Some(&DERIVED_MAGIC)
    }

    /// Serialize the *body* (everything the digest/signature covers).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.put_u8(DERIVED_MAGIC);
        out.put_u8(DERIVED_VERSION);
        out.put_u64(self.seq);
        out.put_u64(self.interval);
        out.put_u8(match self.op {
            OpKind::Join => 0,
            OpKind::Leave => 1,
            OpKind::Batch => 2,
            OpKind::Refresh => 3,
        });
        out.put_u64(self.timestamp_ms);
        put_bytes(&mut out, &self.code);
        out.put_u32(self.changed.len() as u32);
        for link in &self.changed {
            encode_keyref(&mut out, &link.new_ref);
            encode_keyref(&mut out, &link.from);
        }
        out.put_u32(self.messages.len() as u32);
        for m in &self.messages {
            encode_recipients(&mut out, &m.recipients);
            out.put_u32(m.bundles.len() as u32);
            for b in &m.bundles {
                encode_bundle(&mut out, b);
            }
        }
        out
    }

    /// Serialize body + auth tag (the full datagram payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.encode_body();
        encode_auth(&mut out, &self.auth);
        out
    }

    /// Total wire length.
    pub fn wire_len(&self) -> usize {
        self.encode().len()
    }

    /// Decode a packet, returning it with the length of its body prefix.
    pub fn decode(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        let mut buf = bytes;
        match get_u8(&mut buf)? {
            DERIVED_MAGIC => {}
            t => return Err(WireError::BadTag { context: "derived magic", tag: t }),
        }
        match get_u8(&mut buf)? {
            DERIVED_VERSION => {}
            t => return Err(WireError::BadTag { context: "derived version", tag: t }),
        }
        let seq = get_u64(&mut buf)?;
        let interval = get_u64(&mut buf)?;
        let op = match get_u8(&mut buf)? {
            0 => OpKind::Join,
            1 => OpKind::Leave,
            2 => OpKind::Batch,
            3 => OpKind::Refresh,
            t => return Err(WireError::BadTag { context: "op kind", tag: t }),
        };
        let timestamp_ms = get_u64(&mut buf)?;
        let code = get_bytes(&mut buf)?;
        let n = get_count(&mut buf)?;
        let mut changed = Vec::with_capacity(n);
        for _ in 0..n {
            let new_ref = decode_keyref(&mut buf)?;
            let from = decode_keyref(&mut buf)?;
            changed.push(kg_core::derive::DerivedLink { new_ref, from });
        }
        let nm = get_count(&mut buf)?;
        let mut messages = Vec::with_capacity(nm);
        for _ in 0..nm {
            let recipients = decode_recipients(&mut buf)?;
            let nb = get_count(&mut buf)?;
            let mut bundles = Vec::with_capacity(nb);
            for _ in 0..nb {
                bundles.push(decode_bundle(&mut buf)?);
            }
            messages.push(RekeyMessage { recipients, bundles });
        }
        let body_len = bytes.len() - buf.len();
        let auth = decode_auth(&mut buf)?;
        if !buf.is_empty() {
            return Err(WireError::TrailingBytes(buf.len()));
        }
        Ok((
            DerivedRekeyPacket { seq, interval, op, timestamp_ms, code, changed, messages, auth },
            body_len,
        ))
    }
}

/// Control-plane messages between clients and the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMessage {
    /// A user asks to join the group.
    JoinRequest {
        /// The requester.
        user: UserId,
    },
    /// Server grants a join: tells the user its leaf label and the labels
    /// of the path keys it is about to receive.
    JoinGranted {
        /// The admitted user.
        user: UserId,
        /// Label of the user's individual-key leaf.
        leaf_label: KeyLabel,
        /// Labels of the path keys, root-first.
        path_labels: Vec<KeyLabel>,
    },
    /// Server denies a join (access control).
    JoinDenied {
        /// The rejected user.
        user: UserId,
    },
    /// A user asks to leave; authenticated with an HMAC under the user's
    /// individual key (standing in for the paper's `{leave-request}_{k_u}`).
    LeaveRequest {
        /// The requester.
        user: UserId,
        /// HMAC-MD5 over `user` under the individual key.
        auth: Vec<u8>,
    },
    /// Server confirms a leave.
    LeaveGranted {
        /// The departed user.
        user: UserId,
    },
    /// Server refuses a leave (unknown member or bad authenticator).
    LeaveDenied {
        /// The refused user.
        user: UserId,
    },
}

impl ControlMessage {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            ControlMessage::JoinRequest { user } => {
                out.put_u8(0);
                out.put_u64(user.0);
            }
            ControlMessage::JoinGranted { user, leaf_label, path_labels } => {
                out.put_u8(1);
                out.put_u64(user.0);
                out.put_u64(leaf_label.0);
                out.put_u32(path_labels.len() as u32);
                for l in path_labels {
                    out.put_u64(l.0);
                }
            }
            ControlMessage::JoinDenied { user } => {
                out.put_u8(2);
                out.put_u64(user.0);
            }
            ControlMessage::LeaveRequest { user, auth } => {
                out.put_u8(3);
                out.put_u64(user.0);
                put_bytes(&mut out, auth);
            }
            ControlMessage::LeaveGranted { user } => {
                out.put_u8(4);
                out.put_u64(user.0);
            }
            ControlMessage::LeaveDenied { user } => {
                out.put_u8(5);
                out.put_u64(user.0);
            }
        }
        out
    }

    /// Deserialize.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut buf = bytes;
        let tag = get_u8(&mut buf)?;
        let msg = match tag {
            0 => ControlMessage::JoinRequest { user: UserId(get_u64(&mut buf)?) },
            1 => {
                let user = UserId(get_u64(&mut buf)?);
                let leaf_label = KeyLabel(get_u64(&mut buf)?);
                let n = get_count(&mut buf)?;
                let mut path_labels = Vec::with_capacity(n);
                for _ in 0..n {
                    path_labels.push(KeyLabel(get_u64(&mut buf)?));
                }
                ControlMessage::JoinGranted { user, leaf_label, path_labels }
            }
            2 => ControlMessage::JoinDenied { user: UserId(get_u64(&mut buf)?) },
            3 => {
                let user = UserId(get_u64(&mut buf)?);
                let auth = get_bytes(&mut buf)?;
                ControlMessage::LeaveRequest { user, auth }
            }
            4 => ControlMessage::LeaveGranted { user: UserId(get_u64(&mut buf)?) },
            5 => ControlMessage::LeaveDenied { user: UserId(get_u64(&mut buf)?) },
            t => return Err(WireError::BadTag { context: "control message", tag: t }),
        };
        if !buf.is_empty() {
            return Err(WireError::TrailingBytes(buf.len()));
        }
        Ok(msg)
    }
}

fn encode_keyref(out: &mut Vec<u8>, r: &KeyRef) {
    out.put_u64(r.label.0);
    out.put_u64(r.version.0);
}

fn decode_keyref(buf: &mut &[u8]) -> Result<KeyRef, WireError> {
    Ok(KeyRef::new(KeyLabel(get_u64(buf)?), KeyVersion(get_u64(buf)?)))
}

fn encode_recipients(out: &mut Vec<u8>, r: &Recipients) {
    match r {
        Recipients::User(u) => {
            out.put_u8(0);
            out.put_u64(u.0);
        }
        Recipients::Subgroup(k) => {
            out.put_u8(1);
            out.put_u64(k.0);
        }
        Recipients::SubgroupExcept { include, exclude } => {
            out.put_u8(2);
            out.put_u64(include.0);
            out.put_u64(exclude.0);
        }
        Recipients::Group => out.put_u8(3),
    }
}

fn decode_recipients(buf: &mut &[u8]) -> Result<Recipients, WireError> {
    Ok(match get_u8(buf)? {
        0 => Recipients::User(UserId(get_u64(buf)?)),
        1 => Recipients::Subgroup(KeyLabel(get_u64(buf)?)),
        2 => Recipients::SubgroupExcept {
            include: KeyLabel(get_u64(buf)?),
            exclude: KeyLabel(get_u64(buf)?),
        },
        3 => Recipients::Group,
        t => return Err(WireError::BadTag { context: "recipients", tag: t }),
    })
}

fn encode_bundle(out: &mut Vec<u8>, b: &KeyBundle) {
    out.put_u32(b.targets.len() as u32);
    for t in &b.targets {
        encode_keyref(out, t);
    }
    encode_keyref(out, &b.encrypted_with);
    put_bytes(out, &b.iv);
    put_bytes(out, &b.ciphertext);
}

fn decode_bundle(buf: &mut &[u8]) -> Result<KeyBundle, WireError> {
    let n = get_count(buf)?;
    let mut targets = Vec::with_capacity(n);
    for _ in 0..n {
        targets.push(decode_keyref(buf)?);
    }
    let encrypted_with = decode_keyref(buf)?;
    let iv = get_bytes(buf)?;
    let ciphertext = get_bytes(buf)?;
    Ok(KeyBundle { targets, encrypted_with, iv, ciphertext })
}

fn encode_auth(out: &mut Vec<u8>, auth: &AuthTag) {
    match auth {
        AuthTag::None => out.put_u8(0),
        AuthTag::Digest(d) => {
            out.put_u8(1);
            put_bytes(out, d);
        }
        AuthTag::Signed { signature } => {
            out.put_u8(2);
            put_bytes(out, signature);
        }
        AuthTag::MerkleSigned { root_signature, path } => {
            out.put_u8(3);
            put_bytes(out, root_signature);
            out.put_u32(path.index);
            out.put_u32(path.siblings.len() as u32);
            for (side, digest) in &path.siblings {
                out.put_u8(match side {
                    Side::Left => 0,
                    Side::Right => 1,
                });
                put_bytes(out, digest);
            }
        }
    }
}

fn decode_auth(buf: &mut &[u8]) -> Result<AuthTag, WireError> {
    Ok(match get_u8(buf)? {
        0 => AuthTag::None,
        1 => AuthTag::Digest(get_bytes(buf)?),
        2 => AuthTag::Signed { signature: get_bytes(buf)? },
        3 => {
            let root_signature = get_bytes(buf)?;
            let index = get_u32(buf)?;
            let n = get_count(buf)?;
            let mut siblings = Vec::with_capacity(n);
            for _ in 0..n {
                let side = match get_u8(buf)? {
                    0 => Side::Left,
                    1 => Side::Right,
                    t => return Err(WireError::BadTag { context: "merkle side", tag: t }),
                };
                siblings.push((side, get_bytes(buf)?));
            }
            AuthTag::MerkleSigned { root_signature, path: AuthPath { index, siblings } }
        }
        t => return Err(WireError::BadTag { context: "auth tag", tag: t }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> KeyBundle {
        KeyBundle {
            targets: vec![
                KeyRef::new(KeyLabel(1), KeyVersion(3)),
                KeyRef::new(KeyLabel(2), KeyVersion(0)),
            ],
            encrypted_with: KeyRef::new(KeyLabel(9), KeyVersion(7)),
            iv: vec![0; 8],
            ciphertext: vec![0xAB; 24],
        }
    }

    fn sample_packet(auth: AuthTag) -> RekeyPacket {
        RekeyPacket {
            seq: 42,
            op: OpKind::Leave,
            timestamp_ms: 1_000_000,
            message: RekeyMessage {
                recipients: Recipients::SubgroupExcept {
                    include: KeyLabel(5),
                    exclude: KeyLabel(6),
                },
                bundles: vec![sample_bundle(), sample_bundle()],
            },
            auth,
        }
    }

    #[test]
    fn rekey_roundtrip_all_auth_variants() {
        let variants = [
            AuthTag::None,
            AuthTag::Digest(vec![0x11; 16]),
            AuthTag::Signed { signature: vec![0x22; 64] },
            AuthTag::MerkleSigned {
                root_signature: vec![0x33; 64],
                path: AuthPath {
                    index: 2,
                    siblings: vec![(Side::Left, vec![0x44; 16]), (Side::Right, vec![0x55; 16])],
                },
            },
        ];
        for auth in variants {
            let pkt = sample_packet(auth);
            let bytes = pkt.encode();
            let (decoded, body_len) = RekeyPacket::decode(&bytes).unwrap();
            assert_eq!(decoded, pkt);
            assert_eq!(&bytes[..body_len], pkt.encode_body().as_slice());
        }
    }

    fn sample_batch_packet(auth: AuthTag) -> BatchRekeyPacket {
        BatchRekeyPacket {
            interval: 9,
            timestamp_ms: 77,
            joins: 3,
            leaves: 2,
            message: RekeyMessage {
                recipients: Recipients::Group,
                bundles: vec![sample_bundle(), sample_bundle(), sample_bundle()],
            },
            auth,
        }
    }

    #[test]
    fn batch_roundtrip_all_auth_variants() {
        let variants = [
            AuthTag::None,
            AuthTag::Digest(vec![0x11; 16]),
            AuthTag::Signed { signature: vec![0x22; 64] },
            AuthTag::MerkleSigned {
                root_signature: vec![0x33; 64],
                path: AuthPath { index: 0, siblings: vec![(Side::Right, vec![0x44; 16])] },
            },
        ];
        for auth in variants {
            let pkt = sample_batch_packet(auth);
            let bytes = pkt.encode();
            assert!(BatchRekeyPacket::sniff(&bytes));
            let (decoded, body_len) = BatchRekeyPacket::decode(&bytes).unwrap();
            assert_eq!(decoded, pkt);
            assert_eq!(&bytes[..body_len], pkt.encode_body().as_slice());
            assert_eq!(pkt.wire_len(), bytes.len());
        }
    }

    #[test]
    fn batch_magic_is_checked() {
        let mut bytes = sample_batch_packet(AuthTag::None).encode();
        bytes[0] = 0x00;
        assert!(!BatchRekeyPacket::sniff(&bytes));
        assert!(matches!(
            BatchRekeyPacket::decode(&bytes),
            Err(WireError::BadTag { context: "batch magic", .. })
        ));
    }

    #[test]
    fn batch_packets_are_not_control_messages() {
        let bytes = sample_batch_packet(AuthTag::None).encode();
        assert!(ControlMessage::decode(&bytes).is_err());
    }

    #[test]
    fn batch_truncation_and_trailing_rejected() {
        let bytes = sample_batch_packet(AuthTag::Digest(vec![0; 16])).encode();
        for cut in 0..bytes.len() {
            assert!(BatchRekeyPacket::decode(&bytes[..cut]).is_err());
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(BatchRekeyPacket::decode(&extended), Err(WireError::TrailingBytes(1))));
    }

    fn sample_derived_packet(auth: AuthTag) -> DerivedRekeyPacket {
        DerivedRekeyPacket {
            seq: 31,
            interval: 12,
            op: OpKind::Join,
            timestamp_ms: 555,
            code: vec![0xC0; 16],
            changed: vec![
                kg_core::derive::DerivedLink {
                    new_ref: KeyRef::new(KeyLabel(0), KeyVersion(4)),
                    from: KeyRef::new(KeyLabel(0), KeyVersion(3)),
                },
                kg_core::derive::DerivedLink {
                    new_ref: KeyRef::new(KeyLabel(3), KeyVersion(1)),
                    from: KeyRef::new(KeyLabel(17), KeyVersion(0)),
                },
            ],
            messages: vec![
                RekeyMessage {
                    recipients: Recipients::User(UserId(7)),
                    bundles: vec![sample_bundle()],
                },
                RekeyMessage {
                    recipients: Recipients::Group,
                    bundles: vec![sample_bundle(), sample_bundle()],
                },
            ],
            auth,
        }
    }

    #[test]
    fn derived_roundtrip_all_auth_variants() {
        let variants = [
            AuthTag::None,
            AuthTag::Digest(vec![0x11; 16]),
            AuthTag::Signed { signature: vec![0x22; 64] },
            AuthTag::MerkleSigned {
                root_signature: vec![0x33; 64],
                path: AuthPath { index: 1, siblings: vec![(Side::Left, vec![0x44; 16])] },
            },
        ];
        for auth in variants {
            let pkt = sample_derived_packet(auth);
            let bytes = pkt.encode();
            assert!(DerivedRekeyPacket::sniff(&bytes));
            let (decoded, body_len) = DerivedRekeyPacket::decode(&bytes).unwrap();
            assert_eq!(decoded, pkt);
            assert_eq!(&bytes[..body_len], pkt.encode_body().as_slice());
            assert_eq!(pkt.wire_len(), bytes.len());
        }
    }

    #[test]
    fn derived_empty_worklist_roundtrips() {
        // A derived-mode leave: no code, no links, only shipped bundles.
        let pkt = DerivedRekeyPacket {
            seq: 8,
            interval: 8,
            op: OpKind::Leave,
            timestamp_ms: 1,
            code: Vec::new(),
            changed: Vec::new(),
            messages: vec![RekeyMessage {
                recipients: Recipients::Group,
                bundles: vec![sample_bundle()],
            }],
            auth: AuthTag::None,
        };
        let (decoded, _) = DerivedRekeyPacket::decode(&pkt.encode()).unwrap();
        assert_eq!(decoded, pkt);
    }

    #[test]
    fn derived_magic_is_checked() {
        let mut bytes = sample_derived_packet(AuthTag::None).encode();
        bytes[0] = 0x00;
        assert!(!DerivedRekeyPacket::sniff(&bytes));
        assert!(matches!(
            DerivedRekeyPacket::decode(&bytes),
            Err(WireError::BadTag { context: "derived magic", .. })
        ));
    }

    #[test]
    fn derived_unknown_version_fails_closed() {
        let mut bytes = sample_derived_packet(AuthTag::None).encode();
        assert_eq!(bytes[1], DERIVED_VERSION);
        for v in [0u8, 2, 7, 255] {
            bytes[1] = v;
            assert!(
                matches!(
                    DerivedRekeyPacket::decode(&bytes),
                    Err(WireError::BadTag { context: "derived version", tag }) if tag == v
                ),
                "version {v} must be rejected"
            );
        }
    }

    #[test]
    fn derived_packets_are_not_other_formats() {
        let bytes = sample_derived_packet(AuthTag::None).encode();
        assert!(ControlMessage::decode(&bytes).is_err());
        assert!(!BatchRekeyPacket::sniff(&bytes));
        assert!(BatchRekeyPacket::decode(&bytes).is_err());
        // And the other magics don't sniff as derived.
        assert!(!DerivedRekeyPacket::sniff(&sample_batch_packet(AuthTag::None).encode()));
    }

    #[test]
    fn derived_truncation_and_trailing_rejected() {
        let bytes = sample_derived_packet(AuthTag::Digest(vec![0; 16])).encode();
        for cut in 0..bytes.len() {
            assert!(
                DerivedRekeyPacket::decode(&bytes[..cut]).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(DerivedRekeyPacket::decode(&extended), Err(WireError::TrailingBytes(1))));
    }

    #[test]
    fn derived_body_excludes_auth() {
        let p1 = sample_derived_packet(AuthTag::None);
        let p2 = sample_derived_packet(AuthTag::Signed { signature: vec![9; 64] });
        assert_eq!(p1.encode_body(), p2.encode_body());
        assert_ne!(p1.encode(), p2.encode());
    }

    #[test]
    fn op_kind_batch_roundtrips_in_legacy_packet() {
        let mut pkt = sample_packet(AuthTag::None);
        pkt.op = OpKind::Batch;
        let (decoded, _) = RekeyPacket::decode(&pkt.encode()).unwrap();
        assert_eq!(decoded.op, OpKind::Batch);
    }

    #[test]
    fn control_roundtrip_all_variants() {
        let msgs = [
            ControlMessage::JoinRequest { user: UserId(7) },
            ControlMessage::JoinGranted {
                user: UserId(7),
                leaf_label: KeyLabel(30),
                path_labels: vec![KeyLabel(0), KeyLabel(12)],
            },
            ControlMessage::JoinDenied { user: UserId(8) },
            ControlMessage::LeaveRequest { user: UserId(7), auth: vec![1, 2, 3] },
            ControlMessage::LeaveGranted { user: UserId(7) },
            ControlMessage::LeaveDenied { user: UserId(9) },
        ];
        for m in msgs {
            assert_eq!(ControlMessage::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn bad_tags_rejected() {
        let mut bytes = sample_packet(AuthTag::None).encode();
        let last = bytes.len() - 1;
        bytes[last] = 99; // auth tag byte
        assert!(matches!(
            RekeyPacket::decode(&bytes),
            Err(WireError::BadTag { context: "auth tag", .. })
        ));
        assert!(matches!(
            ControlMessage::decode(&[200]),
            Err(WireError::BadTag { context: "control message", .. })
        ));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = sample_packet(AuthTag::Digest(vec![0; 16])).encode();
        for cut in 0..bytes.len() {
            assert!(
                RekeyPacket::decode(&bytes[..cut]).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample_packet(AuthTag::None).encode();
        bytes.push(0);
        assert!(matches!(RekeyPacket::decode(&bytes), Err(WireError::TrailingBytes(1))));
        let mut c = ControlMessage::JoinRequest { user: UserId(1) }.encode();
        c.push(7);
        assert!(matches!(ControlMessage::decode(&c), Err(WireError::TrailingBytes(1))));
    }

    #[test]
    fn wire_len_matches_encoding() {
        let pkt = sample_packet(AuthTag::Signed { signature: vec![0; 64] });
        assert_eq!(pkt.wire_len(), pkt.encode().len());
    }

    #[test]
    fn body_excludes_auth() {
        let p1 = sample_packet(AuthTag::None);
        let p2 = sample_packet(AuthTag::Signed { signature: vec![9; 64] });
        assert_eq!(p1.encode_body(), p2.encode_body());
        assert_ne!(p1.encode(), p2.encode());
    }

    proptest::proptest! {
        #[test]
        fn rekey_roundtrip_random(
            seq: u64,
            ts: u64,
            nbundles in 0usize..5,
            ctlen in 1usize..64,
        ) {
            let bundles: Vec<KeyBundle> = (0..nbundles)
                .map(|i| KeyBundle {
                    targets: vec![KeyRef::new(KeyLabel(i as u64), KeyVersion(seq % 5))],
                    encrypted_with: KeyRef::new(KeyLabel(100 + i as u64), KeyVersion(0)),
                    iv: vec![i as u8; 8],
                    ciphertext: vec![0x5A; ctlen],
                })
                .collect();
            let pkt = RekeyPacket {
                seq,
                op: if seq.is_multiple_of(2) { OpKind::Join } else { OpKind::Leave },
                timestamp_ms: ts,
                message: RekeyMessage { recipients: Recipients::Group, bundles },
                auth: AuthTag::None,
            };
            let (decoded, _) = RekeyPacket::decode(&pkt.encode()).unwrap();
            proptest::prop_assert_eq!(decoded, pkt);
        }

        /// Random garbage either fails to decode or re-encodes to itself
        /// (no silent misparses).
        #[test]
        fn garbage_never_misparses(data in proptest::collection::vec(0u8.., 0..128)) {
            if let Ok((pkt, _)) = RekeyPacket::decode(&data) {
                proptest::prop_assert_eq!(pkt.encode(), data);
            }
        }

        #[test]
        fn derived_roundtrip_random(
            seq: u64,
            interval: u64,
            codelen in 0usize..32,
            nlinks in 0usize..6,
            nmsgs in 0usize..3,
        ) {
            let changed: Vec<kg_core::derive::DerivedLink> = (0..nlinks)
                .map(|i| kg_core::derive::DerivedLink {
                    new_ref: KeyRef::new(KeyLabel(i as u64), KeyVersion(interval % 7 + 1)),
                    from: KeyRef::new(KeyLabel(i as u64), KeyVersion(interval % 7)),
                })
                .collect();
            let messages: Vec<RekeyMessage> = (0..nmsgs)
                .map(|i| RekeyMessage {
                    recipients: Recipients::User(UserId(i as u64)),
                    bundles: vec![sample_bundle()],
                })
                .collect();
            let pkt = DerivedRekeyPacket {
                seq,
                interval,
                op: OpKind::Refresh,
                timestamp_ms: seq ^ interval,
                code: vec![0xEE; codelen],
                changed,
                messages,
                auth: AuthTag::None,
            };
            let (decoded, _) = DerivedRekeyPacket::decode(&pkt.encode()).unwrap();
            proptest::prop_assert_eq!(decoded, pkt);
        }

        /// Garbage bytes never misparse as a derived packet either.
        #[test]
        fn derived_garbage_never_misparses(data in proptest::collection::vec(0u8.., 0..128)) {
            if let Ok((pkt, _)) = DerivedRekeyPacket::decode(&data) {
                proptest::prop_assert_eq!(pkt.encode(), data);
            }
        }
    }
}
