//! The router/relay front-end of a sharded deployment.
//!
//! Members speak the ordinary client protocol from the single-server
//! layers — raw [`ControlMessage`] requests in, raw acks and rekey
//! packets out — so client code is untouched by sharding. The router:
//!
//! * computes the owning shard of every request from the [`ShardMap`]
//!   (home shard, or the member's slice of a spanned group) and tunnels
//!   the request to it in a [`ClusterEnvelope`],
//! * keeps the `(group, user) → endpoint` directory the shards do not
//!   have, subscribing members to a per-`(group, shard)` **slice
//!   multicast address** on admission and unsubscribing them on
//!   departure,
//! * fans shard rekey bundles back out: [`ClusterBody::RekeyGroup`]
//!   becomes one multicast on the slice address,
//!   [`ClusterBody::RekeyUsers`] a unicast set resolved through the
//!   directory — the §7 "multicast via unicast" fallback,
//! * serves the admin plane: a [`ClusterBody::Shutdown`] addressed to
//!   [`ROUTER_SHARD`] is broadcast to every shard and the per-shard
//!   acknowledgements are aggregated into one summary ack,
//! * runs the telemetry plane: allocates a distributed trace per client
//!   request (stamped into the tunnelled envelope, so the shard's spans
//!   link under the router's), merges the periodic
//!   [`ClusterBody::Telemetry`] pushes into one cluster-wide view, and
//!   answers [`ClusterBody::MetricsRequest`] /
//!   [`ClusterBody::TraceRequest`] lookups from admins.
//!
//! Members may also address a group explicitly by sending the envelope
//! form themselves ([`ClusterBody::Control`] with the group id filled
//! in); raw control messages are routed to the router's configured
//! default group. Grants ([`ClusterBody::Grant`]) are relayed verbatim
//! to the member's endpoint: in the paper this half of the join runs
//! over the authenticated unicast admission exchange, and the loopback
//! demo relays it in the clear (see DESIGN.md §4e for the caveat).

use bytes::Bytes;
use kg_core::ids::UserId;
use kg_net::{EndpointId, MulticastAddr, Transport, MAX_UDP_PAYLOAD};
use kg_obs::trace::splitmix64;
use kg_obs::{Obs, ObsEvent, TraceContext};
use kg_wire::{ClusterBody, ClusterEnvelope, ControlMessage, GroupId, ShardId, ROUTER_SHARD};
use std::collections::BTreeMap;

use crate::map::ShardMap;
use crate::telemetry::TelemetryMerger;

/// Most span records returned in one [`ClusterBody::TraceReport`], so
/// the reply stays inside the transport frame budget.
const TRACE_REPORT_SPAN_CAP: usize = 512;

/// Events surfaced to the router's driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterEvent {
    /// A client request was forwarded to its owning shard.
    Routed {
        /// The group addressed.
        group: GroupId,
        /// The requesting member.
        user: UserId,
        /// The shard the request was tunnelled to.
        shard: ShardId,
    },
    /// A control ack (grant/deny) was relayed to a member.
    AckRelayed {
        /// The group concerned.
        group: GroupId,
        /// The member addressed.
        user: UserId,
    },
    /// A join grant (individual key + tree position) was relayed.
    GrantRelayed {
        /// The group concerned.
        group: GroupId,
        /// The admitted member.
        user: UserId,
    },
    /// A shard rekey bundle was multicast on a slice address.
    RekeyMulticast {
        /// The group concerned.
        group: GroupId,
        /// The originating shard.
        shard: ShardId,
        /// Encoded packet size.
        bytes: usize,
    },
    /// A shard rekey bundle was unicast to an explicit member set.
    RekeyUnicast {
        /// The group concerned.
        group: GroupId,
        /// Members resolved through the directory.
        targets: usize,
        /// Encoded packet size.
        bytes: usize,
    },
    /// An admin refresh was forwarded to every shard hosting the group.
    RefreshForwarded {
        /// The group whose key rotates.
        group: GroupId,
        /// Shards addressed.
        shards: usize,
    },
    /// An admin shutdown was broadcast to the shards.
    ShutdownStarted,
    /// Every shard acknowledged; the summary ack went to the admin and
    /// the router's driver should exit once this appears.
    ShutdownComplete {
        /// Members across all shards at shutdown.
        members: u64,
        /// Summed WAL tails (0 proves every final snapshot landed).
        wal_tail: u64,
    },
    /// A shard stats report was relayed to the admin.
    StatsRelayed {
        /// The reporting shard.
        shard: ShardId,
    },
    /// A node telemetry snapshot was merged into the cluster view.
    TelemetryMerged {
        /// The pushing shard.
        shard: ShardId,
        /// The snapshot's gap-free sequence number.
        seq: u64,
    },
    /// A merged metrics view was rendered and sent to an admin.
    MetricsServed {
        /// Requested format (0 = Prometheus text, 1 = JSON).
        format: u8,
    },
    /// A trace lookup was answered.
    TraceServed {
        /// The trace returned (0 = nothing matched).
        trace_id: u64,
        /// Span records in the reply.
        spans: usize,
    },
    /// An inbound datagram was neither a control message nor an envelope.
    BadDatagram {
        /// Claimed sender.
        from: EndpointId,
    },
}

/// Per-shard shutdown acks collected so far: `(shard, members, wal_tail)`.
type ShutdownAcks = Vec<(ShardId, u64, u64)>;

/// The relay front-end. One per cluster.
pub struct Router {
    map: ShardMap,
    endpoint: EndpointId,
    /// Cluster-plane peers, one per shard id.
    shards: BTreeMap<ShardId, EndpointId>,
    /// Group assumed when a member sends a raw (non-envelope) request.
    default_group: GroupId,
    /// Member directory: where acks, grants, and unicast rekeys go.
    directory: BTreeMap<(GroupId, UserId), EndpointId>,
    /// Lazily allocated slice multicast addresses.
    slice_addrs: BTreeMap<(GroupId, ShardId), MulticastAddr>,
    obs: Obs,
    /// Whether a distributed trace is allocated per client request.
    /// On by default; the bench turns it off to measure the overhead.
    tracing: bool,
    /// Monotone counter behind trace-id allocation.
    next_trace: u64,
    /// Merged node telemetry and the cross-process trace store.
    merger: TelemetryMerger,
    /// Highest own-timeline seq already harvested into the trace store.
    harvested_seq: u64,
    /// In-flight admin shutdown: the admin's endpoint and the per-shard
    /// acks collected so far.
    shutdown: Option<(EndpointId, ShutdownAcks)>,
    /// Admin endpoint for stats relays (last requester).
    admin: Option<EndpointId>,
    running: bool,
}

impl Router {
    /// Attach a router to the transport. Shards are registered separately
    /// (their endpoints may not exist yet).
    pub fn new<T: Transport>(map: ShardMap, net: &mut T, obs: Obs) -> Self {
        let endpoint = net.endpoint();
        // Per-process span-id salt, so router span ids never collide
        // with node span ids inside one trace.
        obs.set_trace_salt(endpoint.0 as u64);
        Router {
            map,
            endpoint,
            shards: BTreeMap::new(),
            default_group: GroupId(0),
            directory: BTreeMap::new(),
            slice_addrs: BTreeMap::new(),
            obs,
            tracing: true,
            next_trace: 0,
            merger: TelemetryMerger::default(),
            harvested_seq: 0,
            shutdown: None,
            admin: None,
            running: true,
        }
    }

    /// Register (or re-register, after a shard restart) the cluster-plane
    /// endpoint serving `shard`.
    pub fn register_shard(&mut self, shard: ShardId, ep: EndpointId) {
        self.shards.insert(shard, ep);
    }

    /// The client- and shard-facing endpoint.
    pub fn endpoint(&self) -> EndpointId {
        self.endpoint
    }

    /// The shard map routing this cluster.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The router's observability handle (routed/relayed counters).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Whether the router is still serving (false once an admin shutdown
    /// completes).
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// The group raw (non-envelope) client requests are routed to.
    pub fn set_default_group(&mut self, group: GroupId) {
        self.default_group = group;
    }

    /// Enable or disable per-request distributed tracing (on by
    /// default). Disabled, no trace context is allocated or stamped and
    /// the request path matches the pre-telemetry router byte for byte.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// The merged telemetry view (for in-process drivers; remote admins
    /// use [`ClusterBody::MetricsRequest`]).
    pub fn merger(&self) -> &TelemetryMerger {
        &self.merger
    }

    /// Current member directory size (admitted and in-flight members).
    pub fn directory_len(&self) -> usize {
        self.directory.len()
    }

    /// The multicast address carrying `(group, shard)` slice traffic,
    /// allocated on first use.
    pub fn slice_addr<T: Transport>(
        &mut self,
        net: &mut T,
        group: GroupId,
        shard: ShardId,
    ) -> MulticastAddr {
        *self.slice_addrs.entry((group, shard)).or_insert_with(|| net.multicast_group())
    }

    /// A fresh nonzero trace id, deterministic per router instance.
    fn alloc_trace_id(&mut self) -> u64 {
        self.next_trace += 1;
        let id = splitmix64(splitmix64(self.endpoint.0 as u64) ^ self.next_trace);
        if id == 0 {
            1
        } else {
            id
        }
    }

    /// Pull span records the router's own traced spans appended to its
    /// timeline since the last harvest into the trace store, so lookups
    /// see all three hops, not just the node-pushed middle one.
    fn harvest_own_spans(&mut self) {
        for entry in self.obs.timeline_since(self.harvested_seq) {
            self.harvested_seq = entry.seq;
            if let ObsEvent::Span(s) = entry.event {
                self.merger.ingest_spans([s]);
            }
        }
    }

    /// The flight-recorder dump: merged view, recent raw snapshots, and
    /// the router timeline tail. Binaries write this on shutdown/panic.
    pub fn flight_recorder_dump(&mut self) -> String {
        self.harvest_own_spans();
        self.merger.render_flight_recorder(&self.obs)
    }

    fn forward_request<T: Transport>(
        &mut self,
        net: &mut T,
        group: GroupId,
        msg: ControlMessage,
        from: EndpointId,
        inbound: Option<TraceContext>,
    ) -> RouterEvent {
        // Adopt the sender's trace if the envelope carried one;
        // otherwise this is the ingress, so allocate a fresh root.
        let _trace = match inbound {
            Some(ctx) => Some(self.obs.trace_scope(ctx)),
            None if self.tracing => {
                let id = self.alloc_trace_id();
                Some(self.obs.trace_scope(TraceContext::root(id)))
            }
            None => None,
        };
        let _recv = self.obs.span("router.recv");
        let _relay = self.obs.span("relay");
        let user = match &msg {
            ControlMessage::JoinRequest { user } => *user,
            ControlMessage::LeaveRequest { user, .. } => *user,
            // Filtered by the caller.
            _ => unreachable!("only requests are forwarded"),
        };
        // The directory entry is written at request time, not ack time, so
        // replies (and the joiner's unicast rekey packet) always resolve.
        self.directory.insert((group, user), from);
        let shard = self.map.owner(group, user);
        let trace = self.obs.current_trace().map(TraceContext::next_hop);
        let env = ClusterEnvelope { shard, group, trace, body: ClusterBody::Control(msg) };
        if let Some(&ep) = self.shards.get(&shard) {
            net.send_unicast(self.endpoint, ep, Bytes::from(env.encode()));
        }
        self.obs.counter_with("kg_cluster_routed_total", "shard", &shard.0.to_string()).inc();
        RouterEvent::Routed { group, user, shard }
    }

    /// Process one envelope that came back from a shard (or in from an
    /// envelope-speaking client / the admin).
    fn handle_envelope<T: Transport>(
        &mut self,
        net: &mut T,
        env: ClusterEnvelope,
        from: EndpointId,
    ) -> Option<RouterEvent> {
        let group = env.group;
        let shard = env.shard;
        let ctx = env.trace;
        match env.body {
            // Client plane, inbound: requests tunnelled with an explicit
            // group id.
            ClusterBody::Control(
                msg @ (ControlMessage::JoinRequest { .. } | ControlMessage::LeaveRequest { .. }),
            ) => Some(self.forward_request(net, group, msg, from, ctx)),

            body => {
                // Mark this hop of the trace (if the frame carried one)
                // with a single zero-duration record parented under the
                // sender's span: the relay's own work is sub-microsecond,
                // so the full span machinery would cost more than the
                // thing it measures.
                if let Some(c) = ctx {
                    self.obs.record_hop_span(c, "router.fanout");
                }
                self.handle_relay(net, group, shard, body, from, ctx)
            }
        }
    }

    /// The non-request arms of [`Self::handle_envelope`]. `ctx` is the
    /// frame's trace context, already recorded as a fan-out hop.
    fn handle_relay<T: Transport>(
        &mut self,
        net: &mut T,
        group: GroupId,
        shard: ShardId,
        body: ClusterBody,
        from: EndpointId,
        ctx: Option<TraceContext>,
    ) -> Option<RouterEvent> {
        match body {
            // Client plane, outbound: acks from a shard, relayed raw so
            // the member's protocol is the single-server one.
            ClusterBody::Control(msg) => {
                let (user, admitted, departed) = match &msg {
                    ControlMessage::JoinGranted { user, .. } => (*user, true, false),
                    ControlMessage::LeaveGranted { user } => (*user, false, true),
                    ControlMessage::JoinDenied { user } | ControlMessage::LeaveDenied { user } => {
                        (*user, false, false)
                    }
                    _ => unreachable!("requests matched by the caller"),
                };
                let &ep = self.directory.get(&(group, user))?;
                if admitted {
                    let addr = self.slice_addr(net, group, shard);
                    net.join_group(addr, ep);
                }
                if departed {
                    let addr = self.slice_addr(net, group, shard);
                    net.leave_group(addr, ep);
                    self.directory.remove(&(group, user));
                }
                net.send_unicast(self.endpoint, ep, Bytes::from(msg.encode()));
                Some(RouterEvent::AckRelayed { group, user })
            }

            // The out-of-band half of the admission exchange, relayed
            // verbatim (the member-side driver decodes the envelope).
            ClusterBody::Grant { user, key, leaf_label, path_labels } => {
                let &ep = self.directory.get(&(group, user))?;
                let env = ClusterEnvelope::new(
                    shard,
                    group,
                    ClusterBody::Grant { user, key, leaf_label, path_labels },
                );
                net.send_unicast(self.endpoint, ep, Bytes::from(env.encode()));
                Some(RouterEvent::GrantRelayed { group, user })
            }

            ClusterBody::RekeyGroup { payload } => {
                let bytes = payload.len();
                let addr = self.slice_addr(net, group, shard);
                net.send_multicast(self.endpoint, addr, Bytes::from(payload));
                self.obs.counter("kg_cluster_rekey_multicast_total").inc();
                Some(RouterEvent::RekeyMulticast { group, shard, bytes })
            }

            ClusterBody::RekeyUsers { users, payload } => {
                let bytes = payload.len();
                let eps: Vec<EndpointId> = users
                    .iter()
                    .filter_map(|u| self.directory.get(&(group, *u)).copied())
                    .collect();
                let targets = eps.len();
                net.send_to_set(self.endpoint, &eps, Bytes::from(payload));
                self.obs.counter("kg_cluster_rekey_unicast_total").inc();
                Some(RouterEvent::RekeyUnicast { group, targets, bytes })
            }

            // Admin plane.
            ClusterBody::Refresh => {
                let shards = self.map.shards_of(group);
                let count = shards.len();
                let trace = ctx.map(TraceContext::next_hop);
                for shard in shards {
                    if let Some(&ep) = self.shards.get(&shard) {
                        let env =
                            ClusterEnvelope { shard, group, trace, body: ClusterBody::Refresh };
                        net.send_unicast(self.endpoint, ep, Bytes::from(env.encode()));
                    }
                }
                Some(RouterEvent::RefreshForwarded { group, shards: count })
            }

            ClusterBody::Shutdown if shard == ROUTER_SHARD => {
                self.shutdown = Some((from, Vec::new()));
                for (&shard, &ep) in &self.shards {
                    let env = ClusterEnvelope::new(shard, GroupId(0), ClusterBody::Shutdown);
                    net.send_unicast(self.endpoint, ep, Bytes::from(env.encode()));
                }
                Some(RouterEvent::ShutdownStarted)
            }

            ClusterBody::ShutdownAck { members, wal_tail } => {
                let (admin, mut acks) = self.shutdown.take()?;
                acks.push((shard, members, wal_tail));
                if acks.len() < self.shards.len() {
                    self.shutdown = Some((admin, acks));
                    return None;
                }
                let members: u64 = acks.iter().map(|(_, m, _)| m).sum();
                let wal_tail: u64 = acks.iter().map(|(_, _, w)| w).sum();
                let summary = ClusterEnvelope::new(
                    ROUTER_SHARD,
                    GroupId(0),
                    ClusterBody::ShutdownAck { members, wal_tail },
                );
                net.send_unicast(self.endpoint, admin, Bytes::from(summary.encode()));
                self.running = false;
                Some(RouterEvent::ShutdownComplete { members, wal_tail })
            }

            ClusterBody::StatsRequest => {
                self.admin = Some(from);
                for (&shard, &ep) in &self.shards {
                    let env = ClusterEnvelope::new(shard, GroupId(0), ClusterBody::StatsRequest);
                    net.send_unicast(self.endpoint, ep, Bytes::from(env.encode()));
                }
                None
            }

            body @ ClusterBody::StatsReport { .. } => {
                let admin = self.admin?;
                let env = ClusterEnvelope::new(shard, group, body);
                net.send_unicast(self.endpoint, admin, Bytes::from(env.encode()));
                Some(RouterEvent::StatsRelayed { shard })
            }

            // Telemetry plane. Harvesting the router's own spans on
            // every push keeps the trace store populated in time order:
            // a node's spans land next to the router spans for the same
            // window, so capacity eviction drops whole old traces
            // instead of splitting recent ones (a single bulk harvest
            // at lookup time would re-insert long-evicted trace ids and
            // push out every stitched entry).
            ClusterBody::Telemetry { snapshot } => {
                self.harvest_own_spans();
                let seq = snapshot.seq;
                self.obs
                    .counter_with("kg_cluster_telemetry_total", "shard", &shard.0.to_string())
                    .inc();
                if self.merger.ingest(shard, snapshot) {
                    Some(RouterEvent::TelemetryMerged { shard, seq })
                } else {
                    None
                }
            }

            ClusterBody::MetricsRequest { format } => {
                self.harvest_own_spans();
                let text = match format {
                    1 => self.merger.render_json(&self.obs),
                    _ => self.merger.render_prometheus(&self.obs),
                };
                let reply = ClusterEnvelope::new(
                    ROUTER_SHARD,
                    GroupId(0),
                    ClusterBody::MetricsReport { text: clip_to_frame(text) },
                );
                net.send_unicast(self.endpoint, from, Bytes::from(reply.encode()));
                Some(RouterEvent::MetricsServed { format })
            }

            ClusterBody::TraceRequest { trace_id } => {
                self.harvest_own_spans();
                let found = if trace_id == 0 {
                    self.merger.traces().latest_stitched()
                } else {
                    self.merger.traces().get(trace_id)
                };
                let (trace_id, mut spans) =
                    found.map_or((0, Vec::new()), |t| (t.trace_id, t.spans));
                spans.truncate(TRACE_REPORT_SPAN_CAP);
                let count = spans.len();
                let reply = ClusterEnvelope::new(
                    ROUTER_SHARD,
                    GroupId(0),
                    ClusterBody::TraceReport { trace_id, spans },
                );
                net.send_unicast(self.endpoint, from, Bytes::from(reply.encode()));
                Some(RouterEvent::TraceServed { trace_id, spans: count })
            }

            // Reports echoed back at the router are not ours to act on.
            ClusterBody::MetricsReport { .. } | ClusterBody::TraceReport { .. } => None,

            ClusterBody::Shutdown => None, // shard-addressed; not ours to act on
        }
    }

    /// Drain the inbox: route client requests, relay shard traffic, run
    /// the admin plane. Returns events in processing order.
    pub fn poll<T: Transport>(&mut self, net: &mut T) -> Vec<RouterEvent> {
        let mut events = Vec::new();
        while let Some(dg) = net.recv(self.endpoint) {
            if ClusterEnvelope::sniff(&dg.payload) {
                match ClusterEnvelope::decode(&dg.payload) {
                    Ok(env) => events.extend(self.handle_envelope(net, env, dg.from)),
                    Err(error) => {
                        self.obs.event(ObsEvent::BadDatagram {
                            from: dg.from.0 as u64,
                            error: error.to_string(),
                        });
                        events.push(RouterEvent::BadDatagram { from: dg.from });
                    }
                }
                continue;
            }
            match ControlMessage::decode(&dg.payload) {
                Ok(
                    msg
                    @ (ControlMessage::JoinRequest { .. } | ControlMessage::LeaveRequest { .. }),
                ) => {
                    let group = self.default_group;
                    events.push(self.forward_request(net, group, msg, dg.from, None));
                }
                Ok(_) => {} // stray acks echoed back at the router
                Err(error) => {
                    self.obs.event(ObsEvent::BadDatagram {
                        from: dg.from.0 as u64,
                        error: error.to_string(),
                    });
                    events.push(RouterEvent::BadDatagram { from: dg.from });
                }
            }
        }
        events
    }
}

/// Truncate rendered report text to the transport frame budget (UTF-8
/// safe), leaving room for the envelope header.
fn clip_to_frame(mut text: String) -> String {
    const BUDGET: usize = MAX_UDP_PAYLOAD - 256;
    if text.len() > BUDGET {
        let mut cut = BUDGET;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        text.truncate(cut);
    }
    text
}
