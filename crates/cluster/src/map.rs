//! The shard map: which shard serves which slice of which group.
//!
//! Assignment is pure hashing — every node, the router, and the admin tool
//! compute the same map from the same `(shard count, span table)` inputs,
//! so there is no assignment state to replicate or recover. Each group has
//! a **home shard** (`splitmix64(group) mod shards`). A group expected to
//! outgrow one server can be declared **spanned**: its membership is
//! spread over `span` consecutive shards starting at the home, each shard
//! holding an independent key tree for its slice — the Iolus-style
//! decomposition of §6, with the router standing in for the GSA hierarchy
//! (members only ever hold keys of their own slice's tree).

use kg_wire::{GroupId, ShardId};

/// The `splitmix64` finalizer: a cheap, well-mixed 64-bit permutation.
/// Used for both group homing and member-to-slice assignment so the map
/// stays balanced even for adversarially consecutive ids.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The per-group DRBG seed a shard derives for its slice of `group`.
/// Mixing the shard id in keeps sibling slices' key streams disjoint;
/// mixing the group id in keeps co-hosted groups' streams disjoint. The
/// derivation is deterministic so recovery (and the equivalence tests)
/// can reconstruct it from `(base, shard, group)` alone.
pub fn group_seed(base: u64, shard: ShardId, group: GroupId) -> u64 {
    base ^ mix64(((shard.0 as u64) << 32) | group.0 as u64)
}

/// Deterministic assignment of groups (and their members) to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shards: u16,
    /// Groups spread over more than one shard: `(group, span)`. Kept
    /// sorted; lookups are over a handful of entries.
    spans: Vec<(GroupId, u16)>,
}

impl ShardMap {
    /// A map over `shards` shards (at least one) with no spanned groups.
    pub fn new(shards: u16) -> Self {
        assert!(shards >= 1, "a cluster has at least one shard");
        ShardMap { shards, spans: Vec::new() }
    }

    /// Declare `group` spanned over `span` shards (clamped to the cluster
    /// size; values ≤ 1 remove the entry).
    pub fn with_span(mut self, group: GroupId, span: u16) -> Self {
        let span = span.min(self.shards);
        self.spans.retain(|(g, _)| *g != group);
        if span > 1 {
            let at = self.spans.partition_point(|(g, _)| *g < group);
            self.spans.insert(at, (group, span));
        }
        self
    }

    /// Number of shards in the cluster.
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// Every shard id, in order.
    pub fn all_shards(&self) -> impl Iterator<Item = ShardId> {
        (0..self.shards).map(ShardId)
    }

    /// The home shard of `group`.
    pub fn home(&self, group: GroupId) -> ShardId {
        ShardId((mix64(group.0 as u64) % self.shards as u64) as u16)
    }

    /// How many shards `group` spans (1 unless declared otherwise).
    pub fn span(&self, group: GroupId) -> u16 {
        self.spans.binary_search_by_key(&group, |(g, _)| *g).map(|i| self.spans[i].1).unwrap_or(1)
    }

    /// The shards hosting a slice of `group`: `span` consecutive shards
    /// starting at the home, wrapping around the cluster.
    pub fn shards_of(&self, group: GroupId) -> Vec<ShardId> {
        let home = self.home(group).0 as u32;
        let shards = self.shards as u32;
        (0..self.span(group) as u32).map(|i| ShardId(((home + i) % shards) as u16)).collect()
    }

    /// The shard owning `user`'s slice of `group`. For unspanned groups
    /// this is the home shard; for spanned groups the member hashes to
    /// one of the span's slices, permanently (routing must be stable
    /// across the member's whole join/leave lifetime).
    pub fn owner(&self, group: GroupId, user: kg_core::ids::UserId) -> ShardId {
        let span = self.span(group) as u64;
        let offset = if span > 1 { mix64(user.0) % span } else { 0 };
        let home = self.home(group).0 as u64;
        ShardId(((home + offset) % self.shards as u64) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::ids::UserId;

    #[test]
    fn homes_are_deterministic_and_in_range() {
        let m = ShardMap::new(4);
        for g in 0..200u32 {
            let h = m.home(GroupId(g));
            assert!(h.0 < 4);
            assert_eq!(h, ShardMap::new(4).home(GroupId(g)));
        }
    }

    #[test]
    fn homes_are_roughly_balanced() {
        let m = ShardMap::new(4);
        let mut counts = [0usize; 4];
        for g in 0..4000u32 {
            counts[m.home(GroupId(g)).0 as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed homes: {counts:?}");
        }
    }

    #[test]
    fn unspanned_owner_is_home() {
        let m = ShardMap::new(5);
        let g = GroupId(7);
        for u in 0..50u64 {
            assert_eq!(m.owner(g, UserId(u)), m.home(g));
        }
        assert_eq!(m.shards_of(g), vec![m.home(g)]);
        assert_eq!(m.span(g), 1);
    }

    #[test]
    fn spanned_group_spreads_members_over_its_slices() {
        let m = ShardMap::new(4).with_span(GroupId(1), 3);
        let slices = m.shards_of(GroupId(1));
        assert_eq!(slices.len(), 3);
        let mut seen = std::collections::BTreeSet::new();
        for u in 0..300u64 {
            let o = m.owner(GroupId(1), UserId(u));
            assert!(slices.contains(&o));
            seen.insert(o);
        }
        assert_eq!(seen.len(), 3, "all slices used");
        // Other groups are untouched by the span declaration.
        assert_eq!(m.span(GroupId(2)), 1);
    }

    #[test]
    fn span_wraps_and_clamps() {
        let m = ShardMap::new(3).with_span(GroupId(9), 100);
        let slices = m.shards_of(GroupId(9));
        assert_eq!(slices.len(), 3, "span clamped to cluster size");
        let all: std::collections::BTreeSet<ShardId> = slices.into_iter().collect();
        assert_eq!(all.len(), 3, "wrap-around produces distinct shards");
        // Re-declaring with span 1 removes the entry.
        let m = m.with_span(GroupId(9), 1);
        assert_eq!(m.span(GroupId(9)), 1);
    }

    #[test]
    fn group_seeds_are_pairwise_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for s in 0..4u16 {
            for g in 0..8u32 {
                assert!(seen.insert(group_seed(42, ShardId(s), GroupId(g))));
            }
        }
    }
}
