//! A shard node: one process hosting the key-server slices assigned to
//! one [`ShardId`].
//!
//! The node speaks only the cluster plane ([`ClusterEnvelope`]) with the
//! router — it never sees client endpoints. Each group slice is a full
//! [`GroupKeyServer`] (own key tree, DRBG streams, batch scheduler, and —
//! when a persistence root is configured — own WAL/snapshot directory
//! under `<root>/group-<id>`), so everything the single-server layers
//! guarantee (durable recovery, deterministic rekeying, batch signing)
//! holds per slice without modification. Rekey packets leave the node as
//! opaque payloads inside [`ClusterBody::RekeyGroup`] /
//! [`ClusterBody::RekeyUsers`]; the router resolves them to member
//! endpoints, so the node needs no membership directory at all.

use crate::map::group_seed;
use bytes::Bytes;
use kg_core::ids::UserId;
use kg_core::rekey::Recipients;
use kg_crypto::hmac::{hmac, verify_mac};
use kg_crypto::md5::Md5;
use kg_net::{EndpointId, Transport};
use kg_obs::{Obs, ObsEvent, TraceContext};
use kg_persist::PersistConfig;
use kg_server::{AccessControl, GroupKeyServer, RecoverError, RequestError, ServerConfig};
use kg_wire::{ClusterBody, ClusterEnvelope, ControlMessage, GroupId, ShardId, TelemetrySnapshot};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Most users listed in one [`ClusterBody::RekeyUsers`] envelope. Bounded
/// both by the wire codec's count limit (65 536) and the UDP frame budget;
/// 4 096 ids is 32 KiB of header, leaving room for the packet payload.
pub const REKEY_USERS_CHUNK: usize = 4096;

/// Most trace-span records carried in one telemetry snapshot; older
/// spans are dropped first (the counters still count them).
pub const TELEMETRY_SPAN_TAIL: usize = 256;

/// Encoded-size ceiling for one telemetry snapshot, under the transport
/// frame budget with room for the envelope header.
const TELEMETRY_FRAME_BUDGET: usize = 60_000;

/// Configuration for one shard node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Which shard this node serves.
    pub shard: ShardId,
    /// Template server configuration for every group slice. The slice's
    /// actual seed is derived via [`group_seed`], so co-hosted groups and
    /// sibling slices never share a key stream.
    pub template: ServerConfig,
    /// Access control, applied identically by every slice.
    pub acl: AccessControl,
    /// Durability root; each group slice persists under
    /// `<root>/group-<id>`. `None` runs in-memory.
    pub persist_root: Option<PathBuf>,
    /// WAL/snapshot thresholds for persistent slices.
    pub persist: PersistConfig,
    /// When set, the node pushes a [`TelemetrySnapshot`] to the router
    /// every this many milliseconds (checked at [`ShardNode::tick`]).
    /// `None` disables the stream.
    pub telemetry_interval_ms: Option<u64>,
}

impl NodeConfig {
    /// An in-memory node for `shard` from a template config.
    pub fn in_memory(shard: ShardId, template: ServerConfig, acl: AccessControl) -> Self {
        NodeConfig {
            shard,
            template,
            acl,
            persist_root: None,
            persist: PersistConfig::default(),
            telemetry_interval_ms: None,
        }
    }

    /// The server config a slice of `group` runs with.
    fn slice_config(&self, group: GroupId) -> ServerConfig {
        ServerConfig {
            seed: group_seed(self.template.seed, self.shard, group),
            ..self.template.clone()
        }
    }

    fn slice_dir(&self, group: GroupId) -> Option<PathBuf> {
        self.persist_root.as_ref().map(|r| r.join(format!("group-{}", group.0)))
    }
}

/// Events surfaced to the node's driver (the binaries' main loop, the
/// in-process harness, tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeEvent {
    /// A member joined `group`'s slice (immediate mode or interval flush).
    Joined(GroupId, UserId),
    /// A member left `group`'s slice.
    Left(GroupId, UserId),
    /// A request was rejected; the deny ack went back via the router.
    Rejected(GroupId, UserId, RequestError),
    /// Batched mode: the request is queued for the next interval.
    Queued(GroupId, UserId),
    /// Batched mode: an interval flushed.
    Flushed {
        /// The group whose slice flushed.
        group: GroupId,
        /// Interval sequence number.
        interval: u64,
        /// Members admitted.
        joined: usize,
        /// Members removed.
        left: usize,
    },
    /// The group key of `group`'s slice was rotated on admin request.
    Refreshed(GroupId),
    /// An inbound datagram was not a valid envelope and was dropped.
    BadDatagram(EndpointId),
    /// A flush or refresh failed (WAL append error); the node keeps
    /// running and the driver decides.
    Failed(GroupId, RequestError),
    /// The node acknowledged an admin shutdown; the driver should exit
    /// its loop once this appears.
    ShutdownComplete {
        /// Members across all slices at shutdown.
        members: u64,
        /// WAL records a restart would replay, summed over slices — 0
        /// proves every final snapshot landed.
        wal_tail: u64,
    },
    /// A telemetry snapshot was pushed to the router.
    TelemetryPushed {
        /// The snapshot's gap-free sequence number.
        seq: u64,
        /// Trace-span records carried in the tail.
        spans: usize,
    },
}

/// One shard's key servers behind a cluster-plane endpoint.
pub struct ShardNode {
    config: NodeConfig,
    endpoint: EndpointId,
    router: EndpointId,
    groups: BTreeMap<GroupId, GroupKeyServer>,
    obs: Obs,
    running: bool,
    /// Control requests processed (joins + leaves + refreshes), for the
    /// admin stats report.
    requests: u64,
    /// Intervals flushed, for the admin stats report.
    intervals: u64,
    /// Gap-free sequence of the telemetry snapshots pushed so far.
    telemetry_seq: u64,
    /// Absolute counter values as of the last push, for delta encoding.
    pushed_counters: BTreeMap<String, u64>,
    /// Highest timeline seq whose span records were already exported.
    exported_seq: u64,
    /// Next telemetry push is due at this tick time.
    next_push_ms: u64,
}

impl ShardNode {
    /// Attach a fresh node to the transport. `router` is the cluster-plane
    /// peer every outbound envelope goes to.
    pub fn new<T: Transport>(
        config: NodeConfig,
        net: &mut T,
        router: EndpointId,
        obs: Obs,
    ) -> Self {
        let endpoint = net.endpoint();
        obs.set_trace_salt(endpoint.0 as u64);
        ShardNode {
            config,
            endpoint,
            router,
            groups: BTreeMap::new(),
            obs,
            running: true,
            requests: 0,
            intervals: 0,
            telemetry_seq: 0,
            pushed_counters: BTreeMap::new(),
            exported_seq: 0,
            next_push_ms: 0,
        }
    }

    /// Rebuild a node after a crash: every `group-<id>` directory under
    /// the persistence root is recovered through
    /// [`GroupKeyServer::recover`] (snapshot + WAL-tail replay, digest
    /// verified), and the node re-attaches to its existing `endpoint` —
    /// the network identity survives the process, as with
    /// [`resume`](kg_server::net::NetServer::resume) on the single-server
    /// path.
    pub fn resume(
        config: NodeConfig,
        endpoint: EndpointId,
        router: EndpointId,
        obs: Obs,
    ) -> Result<Self, RecoverError> {
        let mut groups = BTreeMap::new();
        if let Some(root) = &config.persist_root {
            if let Ok(entries) = std::fs::read_dir(root) {
                for entry in entries.flatten() {
                    let name = entry.file_name();
                    let Some(id) = name.to_str().and_then(|n| n.strip_prefix("group-")) else {
                        continue;
                    };
                    let Ok(id) = id.parse::<u32>() else { continue };
                    let group = GroupId(id);
                    let server = GroupKeyServer::recover_observed(
                        config.slice_config(group),
                        config.acl.clone(),
                        entry.path(),
                        config.persist,
                        obs.clone(),
                    )?;
                    groups.insert(group, server);
                }
            }
        }
        obs.set_trace_salt(endpoint.0 as u64);
        Ok(ShardNode {
            config,
            endpoint,
            router,
            groups,
            obs,
            running: true,
            requests: 0,
            intervals: 0,
            telemetry_seq: 0,
            pushed_counters: BTreeMap::new(),
            exported_seq: 0,
            next_push_ms: 0,
        })
    }

    /// Turn the periodic telemetry stream on (or retime it) after
    /// construction; the in-process harness uses this.
    pub fn set_telemetry_interval(&mut self, interval_ms: u64) {
        self.config.telemetry_interval_ms = Some(interval_ms);
    }

    /// The node's cluster-plane endpoint.
    pub fn endpoint(&self) -> EndpointId {
        self.endpoint
    }

    /// The shard this node serves.
    pub fn shard(&self) -> ShardId {
        self.config.shard
    }

    /// The node's observability handle (shared by every slice).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Whether the node is still serving (false after a clean shutdown).
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// The key server for `group`'s slice, if this node hosts one.
    pub fn group(&self, group: GroupId) -> Option<&GroupKeyServer> {
        self.groups.get(&group)
    }

    /// Every hosted `(group, server)` slice.
    pub fn slices(&self) -> impl Iterator<Item = (GroupId, &GroupKeyServer)> {
        self.groups.iter().map(|(g, s)| (*g, s))
    }

    /// Members across all slices.
    pub fn member_total(&self) -> u64 {
        self.groups.values().map(|s| s.group_size() as u64).sum()
    }

    /// WAL records a restart would replay, summed over slices.
    pub fn wal_tail_total(&self) -> u64 {
        self.groups.values().map(|s| s.wal_tail().unwrap_or(0)).sum()
    }

    fn ensure_group(&mut self, group: GroupId) -> Result<&mut GroupKeyServer, RequestError> {
        if !self.groups.contains_key(&group) {
            let cfg = self.config.slice_config(group);
            let mut server = match self.config.slice_dir(group) {
                None => GroupKeyServer::new(cfg, self.config.acl.clone()),
                Some(dir) => GroupKeyServer::with_persistence(
                    cfg,
                    self.config.acl.clone(),
                    dir,
                    self.config.persist,
                )
                .map_err(|e| RequestError::Persist(e.to_string()))?,
            };
            server.attach_obs(self.obs.clone());
            self.groups.insert(group, server);
        }
        Ok(self.groups.get_mut(&group).expect("inserted above"))
    }

    fn send<T: Transport>(&self, net: &mut T, group: GroupId, body: ClusterBody) {
        // Inside a traced request every outbound frame (ack, grant,
        // rekey bundle) carries the context one hop further, parented
        // under the node's innermost open span.
        let trace = self.obs.current_trace().map(TraceContext::next_hop);
        let env = ClusterEnvelope { shard: self.config.shard, group, trace, body };
        net.send_unicast(self.endpoint, self.router, Bytes::from(env.encode()));
    }

    /// Translate one rekey packet's recipients into relay envelopes. The
    /// node resolves tree-structural recipients (subtrees) to explicit
    /// user lists against its own slice; the router maps users to
    /// endpoints.
    fn relay_rekey<T: Transport>(
        &self,
        net: &mut T,
        group: GroupId,
        recipients: &Recipients,
        encoded: &[u8],
    ) {
        let server = self.groups.get(&group).expect("relay for hosted group");
        let users = match recipients {
            Recipients::Group => {
                self.send(net, group, ClusterBody::RekeyGroup { payload: encoded.to_vec() });
                return;
            }
            Recipients::User(u) => vec![*u],
            Recipients::Subgroup(label) => server.tree().userset(*label),
            Recipients::SubgroupExcept { include, exclude } => {
                server.tree().userset_except(*include, *exclude)
            }
        };
        for chunk in users.chunks(REKEY_USERS_CHUNK) {
            self.send(
                net,
                group,
                ClusterBody::RekeyUsers { users: chunk.to_vec(), payload: encoded.to_vec() },
            );
        }
    }

    fn relay_grant<T: Transport>(&self, net: &mut T, group: GroupId, grant: &kg_server::JoinGrant) {
        self.send(
            net,
            group,
            ClusterBody::Control(ControlMessage::JoinGranted {
                user: grant.user,
                leaf_label: grant.leaf_label,
                path_labels: grant.path_labels.clone(),
            }),
        );
        self.send(
            net,
            group,
            ClusterBody::Grant {
                user: grant.user,
                key: grant.individual_key.material().to_vec(),
                leaf_label: grant.leaf_label,
                path_labels: grant.path_labels.clone(),
            },
        );
    }

    fn dispatch_batch<T: Transport>(
        &mut self,
        net: &mut T,
        group: GroupId,
        batch: kg_server::ProcessedBatch,
        events: &mut Vec<NodeEvent>,
    ) {
        self.intervals += 1;
        // Leave acks first, so the router unsubscribes the departed from
        // the slice multicast before any interval traffic is relayed.
        for &user in &batch.departed {
            self.send(net, group, ClusterBody::Control(ControlMessage::LeaveGranted { user }));
            events.push(NodeEvent::Left(group, user));
        }
        for grant in &batch.grants {
            self.relay_grant(net, group, grant);
            events.push(NodeEvent::Joined(group, grant.user));
        }
        for (to, bytes) in batch.frames() {
            self.relay_rekey(net, group, &to, bytes);
        }
        events.push(NodeEvent::Flushed {
            group,
            interval: batch.interval,
            joined: batch.grants.len(),
            left: batch.departed.len(),
        });
    }

    fn handle_join<T: Transport>(
        &mut self,
        net: &mut T,
        group: GroupId,
        user: UserId,
    ) -> NodeEvent {
        self.requests += 1;
        let server = match self.ensure_group(group) {
            Ok(s) => s,
            Err(e) => {
                self.send(net, group, ClusterBody::Control(ControlMessage::JoinDenied { user }));
                return NodeEvent::Rejected(group, user, e);
            }
        };
        if server.is_batched() {
            match server.enqueue_join(user) {
                Ok(()) => NodeEvent::Queued(group, user),
                Err(e) => {
                    self.send(
                        net,
                        group,
                        ClusterBody::Control(ControlMessage::JoinDenied { user }),
                    );
                    NodeEvent::Rejected(group, user, e)
                }
            }
        } else {
            match server.handle_join(user) {
                Err(e) => {
                    self.send(
                        net,
                        group,
                        ClusterBody::Control(ControlMessage::JoinDenied { user }),
                    );
                    NodeEvent::Rejected(group, user, e)
                }
                Ok(op) => {
                    if let Some(grant) = op.join_grant.clone() {
                        self.relay_grant(net, group, &grant);
                    }
                    for (to, bytes) in op.frames() {
                        self.relay_rekey(net, group, &to, bytes);
                    }
                    NodeEvent::Joined(group, user)
                }
            }
        }
    }

    fn handle_leave<T: Transport>(
        &mut self,
        net: &mut T,
        group: GroupId,
        user: UserId,
        auth: &[u8],
    ) -> NodeEvent {
        self.requests += 1;
        let deny = |node: &ShardNode, net: &mut T, e: RequestError| {
            node.send(net, group, ClusterBody::Control(ControlMessage::LeaveDenied { user }));
            NodeEvent::Rejected(group, user, e)
        };
        let not_member = RequestError::Tree(kg_core::tree::TreeError::NotAMember(user));
        let Some(server) = self.groups.get_mut(&group) else {
            return deny(self, net, not_member);
        };
        // Verify {leave-request}_{k_u} exactly as the single server does.
        let authentic = server
            .tree()
            .keyset(user)
            .and_then(|ks| ks.first().cloned())
            .map(|(_, ik)| verify_mac(&hmac::<Md5>(ik.material(), &user.0.to_be_bytes()), auth))
            .unwrap_or(false);
        if !authentic {
            return deny(self, net, not_member);
        }
        if server.is_batched() {
            match server.enqueue_leave(user) {
                Ok(()) => NodeEvent::Queued(group, user),
                Err(e) => deny(self, net, e),
            }
        } else {
            match server.handle_leave(user) {
                Err(e) => deny(self, net, e),
                Ok(op) => {
                    self.send(
                        net,
                        group,
                        ClusterBody::Control(ControlMessage::LeaveGranted { user }),
                    );
                    for (to, bytes) in op.frames() {
                        self.relay_rekey(net, group, &to, bytes);
                    }
                    NodeEvent::Left(group, user)
                }
            }
        }
    }

    fn handle_refresh<T: Transport>(&mut self, net: &mut T, group: GroupId) -> NodeEvent {
        self.requests += 1;
        let Some(server) = self.groups.get_mut(&group) else {
            // Nothing hosted here yet: rotating a nonexistent tree is a
            // no-op, not an error (the admin broadcasts to the span).
            return NodeEvent::Refreshed(group);
        };
        match server.refresh_group_key() {
            Err(e) => NodeEvent::Failed(group, e),
            Ok(op) => {
                for (to, bytes) in op.frames() {
                    self.relay_rekey(net, group, &to, bytes);
                }
                NodeEvent::Refreshed(group)
            }
        }
    }

    fn handle_shutdown<T: Transport>(&mut self, net: &mut T, now_ms: u64) -> NodeEvent {
        let groups: Vec<GroupId> = self.groups.keys().copied().collect();
        let mut events = Vec::new();
        for group in groups {
            match self.groups.get_mut(&group).expect("listed above").shutdown(now_ms) {
                Ok(None) => {}
                Ok(Some(batch)) => self.dispatch_batch(net, group, batch, &mut events),
                Err(e) => events.push(NodeEvent::Failed(group, e)),
            }
        }
        let members = self.member_total();
        let wal_tail = self.wal_tail_total();
        // Final telemetry push before the ack, so the router's flight
        // recorder holds this node's last moments.
        if self.config.telemetry_interval_ms.is_some() {
            self.push_telemetry(net);
        }
        self.send(net, GroupId(0), ClusterBody::ShutdownAck { members, wal_tail });
        self.running = false;
        NodeEvent::ShutdownComplete { members, wal_tail }
    }

    /// Build and push one bounded telemetry snapshot: counter deltas
    /// since the last push, absolute gauges and histogram digests, and
    /// the trace-span records appended to the timeline since then.
    fn push_telemetry<T: Transport>(&mut self, net: &mut T) -> NodeEvent {
        self.telemetry_seq += 1;
        let mut counters = Vec::new();
        for (name, v) in self.obs.counter_values() {
            let prev = self.pushed_counters.insert(name.clone(), v).unwrap_or(0);
            let delta = v.saturating_sub(prev);
            if delta > 0 {
                counters.push((name, delta));
            }
        }
        let mut spans = Vec::new();
        for entry in self.obs.timeline_since(self.exported_seq) {
            self.exported_seq = entry.seq;
            if let ObsEvent::Span(s) = entry.event {
                spans.push(s);
            }
        }
        if spans.len() > TELEMETRY_SPAN_TAIL {
            spans.drain(..spans.len() - TELEMETRY_SPAN_TAIL);
        }
        let mut snapshot = TelemetrySnapshot {
            seq: self.telemetry_seq,
            at_us: self.obs.now_us(),
            counters,
            gauges: self.obs.gauge_values(),
            hists: self.obs.histogram_values(),
            spans,
        };
        // Stay inside the datagram budget: spans are the bulk, so shed
        // oldest-first, then histogram digests if that still overflows.
        while snapshot.wire_len() > TELEMETRY_FRAME_BUDGET && !snapshot.spans.is_empty() {
            snapshot.spans.remove(0);
        }
        while snapshot.wire_len() > TELEMETRY_FRAME_BUDGET && !snapshot.hists.is_empty() {
            snapshot.hists.pop();
        }
        let spans = snapshot.spans.len();
        let seq = snapshot.seq;
        self.send(net, GroupId(0), ClusterBody::Telemetry { snapshot });
        NodeEvent::TelemetryPushed { seq, spans }
    }

    fn stats_report(&self) -> ClusterBody {
        let encryptions = self
            .obs
            .counter_values()
            .into_iter()
            .filter(|(name, _)| name.starts_with("kg_encryptions_total"))
            .map(|(_, v)| v)
            .sum();
        ClusterBody::StatsReport {
            members: self.member_total(),
            intervals: self.intervals,
            requests: self.requests,
            encryptions,
            pending: self.groups.values().map(|s| s.pending_requests() as u64).sum(),
        }
    }

    /// Drain the inbox and process every envelope. Returns events in
    /// processing order.
    pub fn poll<T: Transport>(&mut self, net: &mut T) -> Vec<NodeEvent> {
        let mut events = Vec::new();
        while let Some(dg) = net.recv(self.endpoint) {
            let env = match ClusterEnvelope::decode(&dg.payload) {
                Ok(env) => env,
                Err(error) => {
                    self.obs.event(kg_obs::ObsEvent::BadDatagram {
                        from: dg.from.0 as u64,
                        error: error.to_string(),
                    });
                    events.push(NodeEvent::BadDatagram(dg.from));
                    continue;
                }
            };
            let group = env.group;
            // A traced envelope re-enters its trace for the duration of
            // the handling: the `node.parse` span (and every server span
            // nested in it — tree surgery, encryption, encoding) records
            // into the timeline, linked under the router's relay span.
            let _trace = env.trace.map(|ctx| self.obs.trace_scope(ctx));
            let _span = env.trace.map(|_| self.obs.span("node.parse"));
            match env.body {
                ClusterBody::Control(ControlMessage::JoinRequest { user }) => {
                    events.push(self.handle_join(net, group, user));
                }
                ClusterBody::Control(ControlMessage::LeaveRequest { user, auth }) => {
                    events.push(self.handle_leave(net, group, user, &auth));
                }
                ClusterBody::Refresh => events.push(self.handle_refresh(net, group)),
                ClusterBody::Shutdown => {
                    // now_ms from the transport clock: the shard has no
                    // driver-supplied deadline during an admin shutdown.
                    let now_ms = net.now_us() / 1000;
                    events.push(self.handle_shutdown(net, now_ms));
                }
                ClusterBody::StatsRequest => {
                    let report = self.stats_report();
                    self.send(net, GroupId(0), report);
                }
                // Server-to-client bodies echoed back are dropped, as the
                // single server drops its own acks.
                _ => {}
            }
        }
        events
    }

    /// Drain the inbox, then flush any group slice whose interval is
    /// due, then push a telemetry snapshot if the stream is on and one
    /// is due.
    pub fn tick<T: Transport>(&mut self, net: &mut T, now_ms: u64) -> Vec<NodeEvent> {
        let mut events = self.poll(net);
        let groups: Vec<GroupId> = self.groups.keys().copied().collect();
        for group in groups {
            match self.groups.get_mut(&group).expect("listed above").tick(now_ms) {
                Ok(None) => {}
                Ok(Some(batch)) => self.dispatch_batch(net, group, batch, &mut events),
                Err(e) => {
                    self.obs.event(ObsEvent::FlushFailed { error: e.to_string() });
                    events.push(NodeEvent::Failed(group, e));
                }
            }
        }
        if let Some(interval) = self.config.telemetry_interval_ms {
            if self.running && now_ms >= self.next_push_ms {
                self.next_push_ms = now_ms + interval;
                events.push(self.push_telemetry(net));
            }
        }
        events
    }
}
