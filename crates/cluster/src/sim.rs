//! An in-process cluster on the deterministic simulator: router + N shard
//! nodes + per-member client endpoints, driven from one thread.
//!
//! This is the harness behind the equivalence/crash tests and the
//! `report cluster` benchmark. It plays the roles the binaries split
//! across processes: it owns the [`SimNetwork`], pumps the router and
//! every node until the cluster goes quiet, drains member inboxes
//! (recording grants, counting acks and rekey deliveries), and drives the
//! admin plane (refresh, stats, shutdown) from a driver endpoint.

use bytes::Bytes;
use kg_core::ids::UserId;
use kg_net::{EndpointId, NetConfig, SimNetwork};
use kg_obs::{Obs, ObsConfig};
use kg_persist::PersistConfig;
use kg_server::net::leave_authenticator;
use kg_server::{AccessControl, GroupKeyServer, RecoverError, ServerConfig};
use kg_wire::{ClusterBody, ClusterEnvelope, ControlMessage, GroupId, ShardId, ROUTER_SHARD};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::map::ShardMap;
use crate::node::{NodeConfig, NodeEvent, ShardNode};
use crate::router::{Router, RouterEvent};

/// What a member received out-of-band at admission: the envelope form of
/// [`kg_server::JoinGrant`], as relayed through the router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrantInfo {
    /// The member's individual key material.
    pub key: Vec<u8>,
    /// The shard serving the member's slice.
    pub shard: ShardId,
}

/// Per-member delivery counters, kept by the harness as it drains client
/// inboxes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemberTraffic {
    /// Control acks received (grants and denies).
    pub acks: u64,
    /// Rekey packets received (unicast or slice multicast).
    pub rekeys: u64,
    /// Total rekey bytes received.
    pub rekey_bytes: u64,
}

/// The complete in-process cluster.
pub struct SimCluster {
    /// The simulated network (public: tests inject faults directly).
    pub net: SimNetwork,
    /// The relay front-end.
    pub router: Router,
    /// One node per shard, indexed by shard id.
    pub nodes: Vec<ShardNode>,
    driver: EndpointId,
    /// Kept to rebuild a [`NodeConfig`] when recovering a crashed node.
    template: ServerConfig,
    acl: AccessControl,
    persist_root: Option<PathBuf>,
    clients: BTreeMap<(GroupId, UserId), EndpointId>,
    grants: BTreeMap<(GroupId, UserId), GrantInfo>,
    traffic: BTreeMap<(GroupId, UserId), MemberTraffic>,
    /// Admin-plane replies collected at the driver endpoint.
    admin_inbox: Vec<ClusterEnvelope>,
    node_events: Vec<NodeEvent>,
    router_events: Vec<RouterEvent>,
    /// When set, every member shares the driver endpoint — the bench
    /// mode, where per-member inboxes would only be drained and dropped.
    shared_client_endpoint: bool,
    /// Telemetry push interval handed to recovered nodes (see
    /// [`Self::enable_telemetry`]).
    telemetry_interval_ms: Option<u64>,
}

impl SimCluster {
    /// Build a cluster of `map.shards()` nodes. Each node gets its own
    /// enabled [`Obs`] registry (per-shard view; aggregate with
    /// [`crate::aggregate_counter_values`]); pass a persistence root to
    /// give every slice a WAL/snapshot directory under
    /// `<root>/shard-<id>/group-<id>`.
    pub fn new(
        map: ShardMap,
        template: ServerConfig,
        acl: AccessControl,
        net_config: NetConfig,
        persist_root: Option<&Path>,
    ) -> Self {
        let mut net = SimNetwork::new(net_config);
        let mut router = Router::new(map, &mut net, Obs::new(ObsConfig::default()));
        let mut nodes = Vec::new();
        for shard in router.map().all_shards().collect::<Vec<_>>() {
            let config = NodeConfig {
                shard,
                template: template.clone(),
                acl: acl.clone(),
                persist_root: persist_root.map(|r| r.join(format!("shard-{}", shard.0))),
                persist: PersistConfig::default(),
                telemetry_interval_ms: None,
            };
            let node =
                ShardNode::new(config, &mut net, router.endpoint(), Obs::new(ObsConfig::default()));
            router.register_shard(shard, node.endpoint());
            nodes.push(node);
        }
        let driver = net.endpoint();
        SimCluster {
            net,
            router,
            nodes,
            driver,
            template,
            acl,
            persist_root: persist_root.map(Path::to_path_buf),
            clients: BTreeMap::new(),
            grants: BTreeMap::new(),
            traffic: BTreeMap::new(),
            admin_inbox: Vec::new(),
            node_events: Vec::new(),
            router_events: Vec::new(),
            shared_client_endpoint: false,
            telemetry_interval_ms: None,
        }
    }

    /// Turn on the periodic node → router telemetry stream for every
    /// node (pushes happen at [`Self::tick`] times).
    pub fn enable_telemetry(&mut self, interval_ms: u64) {
        self.telemetry_interval_ms = Some(interval_ms);
        for node in &mut self.nodes {
            node.set_telemetry_interval(interval_ms);
        }
    }

    /// Ask the router for the merged cluster-wide metrics view
    /// (0 = Prometheus text, 1 = JSON); the [`ClusterBody::MetricsReport`]
    /// reply lands in [`Self::take_admin_replies`] after a settle.
    pub fn request_metrics(&mut self, format: u8) {
        let env =
            ClusterEnvelope::new(ROUTER_SHARD, GroupId(0), ClusterBody::MetricsRequest { format });
        let (driver, router) = (self.driver, self.router.endpoint());
        self.net.send_unicast(driver, router, Bytes::from(env.encode()));
    }

    /// Ask the router for a reassembled trace (0 = the latest fully
    /// stitched one); the reply lands in [`Self::take_admin_replies`].
    pub fn request_trace(&mut self, trace_id: u64) {
        let env =
            ClusterEnvelope::new(ROUTER_SHARD, GroupId(0), ClusterBody::TraceRequest { trace_id });
        let (driver, router) = (self.driver, self.router.endpoint());
        self.net.send_unicast(driver, router, Bytes::from(env.encode()));
    }

    /// Route every member through the driver endpoint instead of one
    /// endpoint per member. Used by the benchmark, where a million
    /// per-member inboxes would measure the harness, not the cluster.
    pub fn use_shared_client_endpoint(&mut self) {
        self.shared_client_endpoint = true;
    }

    /// The admin/driver endpoint.
    pub fn driver(&self) -> EndpointId {
        self.driver
    }

    /// The endpoint serving `(group, user)`, allocating one if needed.
    pub fn client_endpoint(&mut self, group: GroupId, user: UserId) -> EndpointId {
        if self.shared_client_endpoint {
            return self.driver;
        }
        if let Some(&ep) = self.clients.get(&(group, user)) {
            return ep;
        }
        let ep = self.net.endpoint();
        self.clients.insert((group, user), ep);
        ep
    }

    /// The grant `(group, user)` received at admission, if any.
    pub fn grant(&self, group: GroupId, user: UserId) -> Option<&GrantInfo> {
        self.grants.get(&(group, user))
    }

    /// Delivery counters for `(group, user)`.
    pub fn traffic(&self, group: GroupId, user: UserId) -> MemberTraffic {
        self.traffic.get(&(group, user)).copied().unwrap_or_default()
    }

    /// Node events accumulated since the last [`Self::take_events`].
    pub fn take_events(&mut self) -> (Vec<NodeEvent>, Vec<RouterEvent>) {
        (std::mem::take(&mut self.node_events), std::mem::take(&mut self.router_events))
    }

    /// Admin-plane replies accumulated at the driver endpoint.
    pub fn take_admin_replies(&mut self) -> Vec<ClusterEnvelope> {
        std::mem::take(&mut self.admin_inbox)
    }

    /// Send a join request for `(group, user)` from its client endpoint.
    pub fn join(&mut self, group: GroupId, user: UserId) {
        let ep = self.client_endpoint(group, user);
        // The router rewrites the shard to the owner.
        let env = ClusterEnvelope::new(
            ROUTER_SHARD,
            group,
            ClusterBody::Control(ControlMessage::JoinRequest { user }),
        );
        let router = self.router.endpoint();
        self.net.send_unicast(ep, router, Bytes::from(env.encode()));
    }

    /// Send an authenticated leave request for `(group, user)`, using the
    /// individual key recorded from the member's grant.
    ///
    /// # Panics
    ///
    /// Panics if the member holds no grant (never admitted).
    pub fn leave(&mut self, group: GroupId, user: UserId) {
        let key = self.grants.get(&(group, user)).expect("leave without a grant").key.clone();
        let auth = leave_authenticator(user, &key);
        let ep = self.client_endpoint(group, user);
        let env = ClusterEnvelope::new(
            ROUTER_SHARD,
            group,
            ClusterBody::Control(ControlMessage::LeaveRequest { user, auth }),
        );
        let router = self.router.endpoint();
        self.net.send_unicast(ep, router, Bytes::from(env.encode()));
    }

    /// Ask every shard hosting `group` to rotate its slice's group key.
    pub fn refresh(&mut self, group: GroupId) {
        let env = ClusterEnvelope::new(ROUTER_SHARD, group, ClusterBody::Refresh);
        let (driver, router) = (self.driver, self.router.endpoint());
        self.net.send_unicast(driver, router, Bytes::from(env.encode()));
    }

    /// Ask every shard for a stats report (collect the replies from
    /// [`Self::take_admin_replies`] after a [`Self::settle`]).
    pub fn request_stats(&mut self) {
        let env = ClusterEnvelope::new(ROUTER_SHARD, GroupId(0), ClusterBody::StatsRequest);
        let (driver, router) = (self.driver, self.router.endpoint());
        self.net.send_unicast(driver, router, Bytes::from(env.encode()));
    }

    fn pump_members(&mut self) {
        let eps: Vec<((GroupId, UserId), EndpointId)> =
            self.clients.iter().map(|(&k, &ep)| (k, ep)).collect();
        for (key, ep) in eps {
            while let Some(dg) = self.net.recv(ep) {
                self.record_member_datagram(key, &dg.payload);
            }
        }
        // The driver doubles as the shared client endpoint in bench mode,
        // and always receives the admin-plane replies.
        while let Some(dg) = self.net.recv(self.driver) {
            if let Ok(env) = ClusterEnvelope::decode(&dg.payload) {
                match env.body {
                    ClusterBody::Grant { user, ref key, .. } => {
                        self.grants.insert(
                            (env.group, user),
                            GrantInfo { key: key.clone(), shard: env.shard },
                        );
                    }
                    ClusterBody::ShutdownAck { .. }
                    | ClusterBody::StatsReport { .. }
                    | ClusterBody::MetricsReport { .. }
                    | ClusterBody::TraceReport { .. } => {
                        self.admin_inbox.push(env);
                    }
                    _ => {}
                }
            }
            // Raw acks/rekeys on the shared endpoint are dropped
            // uncounted: bench mode measures the cluster, not clients.
        }
    }

    fn record_member_datagram(&mut self, key: (GroupId, UserId), payload: &[u8]) {
        if ClusterEnvelope::sniff(payload) {
            if let Ok(env) = ClusterEnvelope::decode(payload) {
                if let ClusterBody::Grant { user, key: ik, .. } = env.body {
                    self.grants.insert((env.group, user), GrantInfo { key: ik, shard: env.shard });
                }
            }
            return;
        }
        let t = self.traffic.entry(key).or_default();
        match ControlMessage::decode(payload) {
            Ok(_) => t.acks += 1,
            Err(_) => {
                // Not a control message: a rekey packet (single or batch).
                t.rekeys += 1;
                t.rekey_bytes += payload.len() as u64;
            }
        }
    }

    /// Pump router, nodes, and member inboxes until the network goes
    /// quiet and nobody has anything left to say.
    pub fn settle(&mut self) {
        loop {
            self.net.run_until_quiet();
            let mut progress = false;
            let r = self.router.poll(&mut self.net);
            progress |= !r.is_empty();
            self.router_events.extend(r);
            for node in &mut self.nodes {
                let evs = node.poll(&mut self.net);
                progress |= !evs.is_empty();
                self.node_events.extend(evs);
            }
            self.net.run_until_quiet();
            self.pump_members();
            if !progress && self.net.pending_total() == 0 {
                return;
            }
        }
    }

    /// [`Self::settle`], then flush any due batch intervals at `now_ms`,
    /// then settle again so the interval traffic is fully delivered.
    pub fn tick(&mut self, now_ms: u64) {
        self.settle();
        for node in &mut self.nodes {
            let evs = node.tick(&mut self.net, now_ms);
            self.node_events.extend(evs);
        }
        self.settle();
    }

    /// Run the admin shutdown handshake to completion. Returns the
    /// aggregated `(members, wal_tail)` summary the admin received.
    pub fn shutdown(&mut self) -> (u64, u64) {
        let env = ClusterEnvelope::new(ROUTER_SHARD, GroupId(0), ClusterBody::Shutdown);
        let (driver, router) = (self.driver, self.router.endpoint());
        self.net.send_unicast(driver, router, Bytes::from(env.encode()));
        self.settle();
        let summary = self
            .admin_inbox
            .iter()
            .rev()
            .find_map(|env| match env.body {
                ClusterBody::ShutdownAck { members, wal_tail } if env.shard == ROUTER_SHARD => {
                    Some((members, wal_tail))
                }
                _ => None,
            })
            .expect("shutdown handshake completed");
        assert!(!self.router.is_running(), "router exits after the summary ack");
        assert!(self.nodes.iter().all(|n| !n.is_running()), "every node acknowledged");
        summary
    }

    fn node_config(&self, shard: ShardId) -> NodeConfig {
        NodeConfig {
            shard,
            template: self.template.clone(),
            acl: self.acl.clone(),
            persist_root: self.persist_root.as_ref().map(|r| r.join(format!("shard-{}", shard.0))),
            persist: PersistConfig::default(),
            telemetry_interval_ms: self.telemetry_interval_ms,
        }
    }

    /// Crash `shard`'s node: its endpoint goes down (inbound traffic is
    /// dropped, like a host that lost power) and all in-memory state is
    /// lost. Pair with [`Self::recover_node`].
    pub fn crash_node(&mut self, shard: ShardId) {
        let node = self.nodes.iter().find(|n| n.shard() == shard).expect("known shard");
        self.net.crash(node.endpoint());
    }

    /// Restart a crashed node from its persistence directories, reusing
    /// its endpoint (the network identity survives the process). The
    /// node's obs registry starts fresh, as a real restart's would.
    pub fn recover_node(&mut self, shard: ShardId) -> Result<(), RecoverError> {
        let idx = self.nodes.iter().position(|n| n.shard() == shard).expect("known shard");
        let ep = self.nodes[idx].endpoint();
        self.net.restart(ep);
        let node = ShardNode::resume(
            self.node_config(shard),
            ep,
            self.router.endpoint(),
            Obs::new(ObsConfig::default()),
        )?;
        self.router.register_shard(shard, node.endpoint());
        self.nodes[idx] = node;
        Ok(())
    }

    /// The key server for `(group, user)`'s slice.
    pub fn slice_server(&self, group: GroupId, user: UserId) -> Option<&GroupKeyServer> {
        let shard = self.router.map().owner(group, user);
        self.nodes.iter().find(|n| n.shard() == shard)?.group(group)
    }

    /// Members currently admitted to `group` across all slices.
    pub fn group_size(&self, group: GroupId) -> usize {
        self.nodes.iter().filter_map(|n| n.group(group)).map(|s| s.group_size()).sum()
    }

    /// Per-shard counter snapshots, for export and aggregation.
    pub fn shard_counters(&self) -> Vec<(ShardId, Vec<(String, u64)>)> {
        self.nodes.iter().map(|n| (n.shard(), n.obs().counter_values())).collect()
    }
}
