//! Router-side telemetry plane: merging per-shard snapshot streams into
//! one cluster-wide metrics view, storing cross-process trace spans for
//! reassembly, and keeping a flight-recorder ring for post-mortems.
//!
//! Shard nodes push bounded [`TelemetrySnapshot`]s over the existing
//! cluster plane (see `kg_wire::telemetry` for the delta/absolute
//! encoding rules). The [`TelemetryMerger`] is the receiving half:
//!
//! * counter **deltas** are summed per shard (a seq gap means lost
//!   pushes; the merger surfaces the under-count as a per-shard
//!   `missed` figure instead of silently absorbing it),
//! * gauges and histogram digests are **absolute** and last-write-wins
//!   per shard, then combined across shards (sums for gauges and
//!   histogram counts, per-shard maxima for quantiles — quantile
//!   digests do not merge exactly),
//! * span records feed a bounded [`TraceStore`] keyed by trace id,
//!   which [`kg_obs::trace::reassemble`] turns back into causally
//!   linked cross-process traces on demand.

use kg_obs::trace::reassemble;
use kg_obs::{HistogramSnapshot, Obs, Trace, TraceSpan};
use kg_wire::{ShardId, TelemetrySnapshot};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Most traces retained by the router; older traces are evicted in
/// arrival order.
pub const TRACE_STORE_CAPACITY: usize = 256;

/// Snapshots retained in the flight-recorder ring (across all shards).
pub const FLIGHT_RECORDER_CAPACITY: usize = 64;

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Splice a suffix into a rendered metric name, before the label block
/// if one is present (`kg_span_us{span="x"}` + `_count` →
/// `kg_span_us_count{span="x"}`).
fn suffixed(name: &str, suffix: &str) -> String {
    match name.find('{') {
        Some(i) => format!("{}{}{}", &name[..i], suffix, &name[i..]),
        None => format!("{name}{suffix}"),
    }
}

/// The per-shard half of the merged view.
#[derive(Debug, Default, Clone)]
struct ShardView {
    /// Highest snapshot seq ingested.
    last_seq: u64,
    /// Pushes lost between ingested snapshots (seq gaps). The counter
    /// sums below under-count by whatever those snapshots carried.
    missed: u64,
    /// Node-local timestamp of the last snapshot.
    last_at_us: u64,
    /// Snapshots ingested.
    snapshots: u64,
    /// Summed counter deltas (≈ the node's absolute counters, modulo
    /// missed pushes).
    counters: BTreeMap<String, u64>,
    /// Last-write-wins absolute gauges.
    gauges: BTreeMap<String, i64>,
    /// Last-write-wins histogram digests.
    hists: BTreeMap<String, HistogramSnapshot>,
}

impl ShardView {
    /// The shard's request total, the load figure behind the skew
    /// gauges (joins + leaves + refreshes + batch flushes).
    fn requests(&self) -> u64 {
        self.counters
            .iter()
            .filter(|(name, _)| name.starts_with("kg_requests_total"))
            .map(|(_, v)| *v)
            .sum()
    }
}

/// Bounded store of trace-span records, keyed by trace id, evicting
/// whole traces oldest-first.
#[derive(Debug, Default)]
pub struct TraceStore {
    by_trace: BTreeMap<u64, Vec<TraceSpan>>,
    /// Trace ids in first-seen order, for eviction.
    order: VecDeque<u64>,
    capacity: usize,
}

impl TraceStore {
    /// An empty store retaining at most `capacity` traces.
    pub fn new(capacity: usize) -> Self {
        TraceStore { by_trace: BTreeMap::new(), order: VecDeque::new(), capacity }
    }

    /// Traces currently retained.
    pub fn len(&self) -> usize {
        self.by_trace.len()
    }

    /// Whether the store holds no traces.
    pub fn is_empty(&self) -> bool {
        self.by_trace.is_empty()
    }

    /// Add span records (from any process; duplicates collapse).
    ///
    /// Only a hop-0 span — the router's own ingress record, the trace's
    /// root side — may *create* an entry; fragments for unknown trace
    /// ids are dropped. Requests and their fan-out/node spans arrive in
    /// separated bursts (the router drains every pending request before
    /// the first reply comes back, and shards push their span windows
    /// whenever their timers fire), so under any create-on-sight policy
    /// a burst of stragglers for already-evicted traces would push out
    /// every trace still accumulating its other side. A rootless
    /// fragment can never reassemble stitched, so dropping it loses
    /// nothing.
    pub fn ingest(&mut self, spans: impl IntoIterator<Item = TraceSpan>) {
        for s in spans {
            match self.by_trace.entry(s.trace_id) {
                Entry::Occupied(mut e) => {
                    let spans = e.get_mut();
                    if !spans.contains(&s) {
                        spans.push(s);
                    }
                }
                Entry::Vacant(e) => {
                    if s.hop != 0 {
                        continue;
                    }
                    self.order.push_back(s.trace_id);
                    e.insert(vec![s]);
                }
            }
        }
        while self.order.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.by_trace.remove(&old);
            }
        }
    }

    /// Reassemble the trace with this id, if any of its spans are held.
    pub fn get(&self, trace_id: u64) -> Option<Trace> {
        let spans = self.by_trace.get(&trace_id)?;
        reassemble(spans.iter().cloned()).pop()
    }

    /// Retained trace ids, first-seen order (oldest first).
    pub fn trace_ids(&self) -> Vec<u64> {
        self.order.iter().copied().collect()
    }

    /// The most recently started trace that reassembles fully stitched
    /// (root present, ≥ 2 hops, every parent link resolved).
    pub fn latest_stitched(&self) -> Option<Trace> {
        self.order.iter().rev().filter_map(|id| self.get(*id)).find(|t| t.is_stitched())
    }
}

/// One flight-recorder entry: where a snapshot came from and what it
/// carried.
#[derive(Debug, Clone)]
struct Recorded {
    shard: ShardId,
    snapshot: TelemetrySnapshot,
}

/// The router's merged view of every shard's telemetry stream.
#[derive(Debug)]
pub struct TelemetryMerger {
    shards: BTreeMap<ShardId, ShardView>,
    traces: TraceStore,
    recorder: VecDeque<Recorded>,
}

impl Default for TelemetryMerger {
    fn default() -> Self {
        TelemetryMerger {
            shards: BTreeMap::new(),
            traces: TraceStore::new(TRACE_STORE_CAPACITY),
            recorder: VecDeque::new(),
        }
    }
}

impl TelemetryMerger {
    /// Merge one snapshot pushed by `shard`. Returns false if the
    /// snapshot was stale (seq ≤ the last ingested one, e.g. a
    /// duplicated datagram) and was dropped.
    pub fn ingest(&mut self, shard: ShardId, snapshot: TelemetrySnapshot) -> bool {
        let view = self.shards.entry(shard).or_default();
        if snapshot.seq <= view.last_seq {
            return false;
        }
        view.missed += snapshot.seq - view.last_seq - 1;
        view.last_seq = snapshot.seq;
        view.last_at_us = snapshot.at_us;
        view.snapshots += 1;
        for (name, delta) in &snapshot.counters {
            *view.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, v) in &snapshot.gauges {
            view.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &snapshot.hists {
            view.hists.insert(name.clone(), *h);
        }
        self.traces.ingest(snapshot.spans.iter().cloned());
        self.recorder.push_back(Recorded { shard, snapshot });
        while self.recorder.len() > FLIGHT_RECORDER_CAPACITY {
            self.recorder.pop_front();
        }
        true
    }

    /// Add span records that did not arrive via a snapshot (the
    /// router's own timeline).
    pub fn ingest_spans(&mut self, spans: impl IntoIterator<Item = TraceSpan>) {
        self.traces.ingest(spans);
    }

    /// The cross-process trace store.
    pub fn traces(&self) -> &TraceStore {
        &self.traces
    }

    /// Per-shard stream health: `(shard, last_seq, missed)`.
    pub fn shard_health(&self) -> Vec<(ShardId, u64, u64)> {
        self.shards.iter().map(|(s, v)| (*s, v.last_seq, v.missed)).collect()
    }

    /// Counters summed across every shard (and the router's own
    /// registry), keyed by rendered exposition name.
    pub fn merged_counters(&self, router: &Obs) -> BTreeMap<String, u64> {
        let mut sums: BTreeMap<String, u64> = BTreeMap::new();
        for (name, v) in router.counter_values() {
            *sums.entry(name).or_insert(0) += v;
        }
        for view in self.shards.values() {
            for (name, v) in &view.counters {
                *sums.entry(name.clone()).or_insert(0) += v;
            }
        }
        sums
    }

    fn merged_gauges(&self, router: &Obs) -> BTreeMap<String, i64> {
        let mut sums: BTreeMap<String, i64> = BTreeMap::new();
        for (name, v) in router.gauge_values() {
            *sums.entry(name).or_insert(0) += v;
        }
        for view in self.shards.values() {
            for (name, v) in &view.gauges {
                *sums.entry(name.clone()).or_insert(0) += v;
            }
        }
        sums
    }

    /// Histogram digests combined across shards: counts and sums add,
    /// min/max widen, quantiles take the per-shard maximum (an upper
    /// bound — exact quantile merge needs the raw buckets).
    fn merged_hists(&self, router: &Obs) -> BTreeMap<String, HistogramSnapshot> {
        let mut merged: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
        let router_hists = router.histogram_values();
        let shard_hists =
            self.shards.values().flat_map(|v| v.hists.iter().map(|(n, h)| (n.clone(), *h)));
        for (name, h) in router_hists.into_iter().chain(shard_hists) {
            if h.count == 0 {
                continue;
            }
            let m = merged.entry(name).or_default();
            if m.count == 0 {
                *m = h;
            } else {
                m.count += h.count;
                m.sum += h.sum;
                m.min = m.min.min(h.min);
                m.max = m.max.max(h.max);
                m.p50 = m.p50.max(h.p50);
                m.p90 = m.p90.max(h.p90);
                m.p99 = m.p99.max(h.p99);
            }
        }
        merged
    }

    /// Load skew across shards, percent: `(max − min) * 100 / max` of
    /// the per-shard request totals. 0 when balanced or unmeasurable.
    pub fn skew_pct(&self) -> u64 {
        let loads: Vec<u64> = self.shards.values().map(ShardView::requests).collect();
        let (max, min) =
            (loads.iter().copied().max().unwrap_or(0), loads.iter().copied().min().unwrap_or(0));
        ((max - min) * 100).checked_div(max).unwrap_or(0)
    }

    /// Prometheus-style text exposition of the merged cluster view:
    /// summed counters and gauges, combined histogram summaries, and
    /// the synthesized per-shard stream-health and skew gauges.
    pub fn render_prometheus(&self, router: &Obs) -> String {
        let mut out = String::new();
        for (name, v) in self.merged_counters(router) {
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in self.merged_gauges(router) {
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in self.merged_hists(router) {
            let _ = writeln!(out, "{} {}", suffixed(&name, "_count"), h.count);
            let _ = writeln!(out, "{} {}", suffixed(&name, "_sum"), h.sum);
            let _ = writeln!(out, "{} {}", suffixed(&name, "_p50"), h.p50);
            let _ = writeln!(out, "{} {}", suffixed(&name, "_p99"), h.p99);
        }
        for (shard, view) in &self.shards {
            let s = shard.0;
            let _ = writeln!(
                out,
                "kg_cluster_telemetry_snapshots_total{{shard=\"{s}\"}} {}",
                view.snapshots
            );
            let _ =
                writeln!(out, "kg_cluster_telemetry_missed_total{{shard=\"{s}\"}} {}", view.missed);
            let _ = writeln!(
                out,
                "kg_cluster_shard_requests_total{{shard=\"{s}\"}} {}",
                view.requests()
            );
        }
        let _ = writeln!(out, "kg_cluster_shard_skew_pct {}", self.skew_pct());
        let _ = writeln!(out, "kg_cluster_traces_stored {}", self.traces.len());
        out
    }

    /// JSON dump of the same merged view, for machine consumers.
    pub fn render_json(&self, router: &Obs) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let counters = self.merged_counters(router);
        for (i, (name, v)) in counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", json_escape(name));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        let gauges = self.merged_gauges(router);
        for (i, (name, v)) in gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", json_escape(name));
        }
        out.push_str("\n  },\n  \"hists\": {");
        for (i, (name, h)) in self.merged_hists(router).iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}}}",
                json_escape(name),
                h.count,
                h.sum,
                h.p50,
                h.p99
            );
        }
        out.push_str("\n  },\n  \"shards\": [");
        for (i, (shard, view)) in self.shards.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"shard\": {}, \"seq\": {}, \"missed\": {}, \"requests\": {}, \
                 \"at_us\": {}}}",
                shard.0,
                view.last_seq,
                view.missed,
                view.requests(),
                view.last_at_us
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"skew_pct\": {},\n  \"traces_stored\": {}\n}}\n",
            self.skew_pct(),
            self.traces.len()
        );
        out
    }

    /// The flight-recorder dump: the merged view plus the last
    /// [`FLIGHT_RECORDER_CAPACITY`] raw snapshots and the tail of the
    /// router's own timeline. Written on shutdown or crash so the final
    /// moments of a cluster survive the process.
    pub fn render_flight_recorder(&self, router: &Obs) -> String {
        let mut out = String::from("{\n  \"merged\": ");
        // Indent the nested document one level so the dump stays
        // readable; it is already valid JSON.
        out.push_str(&self.render_json(router).trim_end().replace('\n', "\n  "));
        out.push_str(",\n  \"snapshots\": [");
        for (i, rec) in self.recorder.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"shard\": {}, \"seq\": {}, \"at_us\": {}, \"counters\": [",
                rec.shard.0, rec.snapshot.seq, rec.snapshot.at_us
            );
            for (j, (name, v)) in rec.snapshot.counters.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}[\"{}\", {v}]", json_escape(name));
            }
            let _ = write!(out, "], \"spans\": {}}}", rec.snapshot.spans.len());
        }
        out.push_str("\n  ],\n  \"timeline\": [");
        let timeline = router.render_timeline();
        for (i, line) in
            timeline.lines().rev().take(100).collect::<Vec<_>>().iter().rev().enumerate()
        {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\"", json_escape(line));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_obs::{Obs, ObsConfig};

    fn snap(seq: u64, counters: &[(&str, u64)]) -> TelemetrySnapshot {
        TelemetrySnapshot {
            seq,
            at_us: seq * 1000,
            counters: counters.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            ..TelemetrySnapshot::default()
        }
    }

    fn span(trace: u64, id: u64, parent: u64, hop: u8, path: &str) -> TraceSpan {
        TraceSpan {
            trace_id: trace,
            span_id: id,
            parent_span: parent,
            hop,
            path: path.to_string(),
            start_us: id,
            end_us: id + 10,
        }
    }

    #[test]
    fn deltas_sum_and_gaps_are_counted() {
        let mut m = TelemetryMerger::default();
        let s0 = ShardId(0);
        assert!(m.ingest(s0, snap(1, &[("kg_requests_total{kind=\"join\"}", 3)])));
        // seq 2 and 3 lost in flight; the gap is surfaced, not hidden.
        assert!(m.ingest(s0, snap(4, &[("kg_requests_total{kind=\"join\"}", 2)])));
        // A duplicated datagram is stale and dropped.
        assert!(!m.ingest(s0, snap(4, &[("kg_requests_total{kind=\"join\"}", 2)])));
        m.ingest(ShardId(1), snap(1, &[("kg_requests_total{kind=\"join\"}", 10)]));

        let router = Obs::new(ObsConfig::default());
        router.counter("kg_cluster_routed_total").add(7);
        let merged = m.merged_counters(&router);
        assert_eq!(merged.get("kg_requests_total{kind=\"join\"}"), Some(&15));
        assert_eq!(merged.get("kg_cluster_routed_total"), Some(&7));
        assert_eq!(m.shard_health(), vec![(ShardId(0), 4, 2), (ShardId(1), 1, 0)]);
        // Skew: shard 1 at 10 requests, shard 0 at 5 → (10-5)*100/10.
        assert_eq!(m.skew_pct(), 50);

        let prom = m.render_prometheus(&router);
        assert!(prom.contains("kg_cluster_telemetry_missed_total{shard=\"0\"} 2"));
        assert!(prom.contains("kg_cluster_shard_skew_pct 50"));
        let json = m.render_json(&router);
        assert!(json.contains("\"missed\": 2"));
        assert!(json.contains("kg_requests_total{kind=\\\"join\\\"}"));
    }

    #[test]
    fn gauges_and_hists_are_absolute() {
        let mut m = TelemetryMerger::default();
        let mut s = snap(1, &[]);
        s.gauges = vec![("kg_group_size".into(), 5)];
        m.ingest(ShardId(0), s);
        let mut s = snap(2, &[]);
        s.gauges = vec![("kg_group_size".into(), 3)];
        s.hists = vec![(
            "kg_span_us{span=\"op.join\"}".into(),
            HistogramSnapshot { count: 4, sum: 40, min: 5, max: 20, p50: 9, p90: 18, p99: 20 },
        )];
        m.ingest(ShardId(0), s);
        let router = Obs::new(ObsConfig::default());
        // Last write wins, not 5 + 3.
        assert_eq!(m.merged_gauges(&router).get("kg_group_size"), Some(&3));
        let prom = m.render_prometheus(&router);
        assert!(prom.contains("kg_span_us_count{span=\"op.join\"} 4"));
        assert!(prom.contains("kg_span_us_p99{span=\"op.join\"} 20"));
    }

    #[test]
    fn trace_store_stitches_and_evicts() {
        let mut store = TraceStore::new(2);
        store.ingest([
            span(1, 10, 0, 0, "router.recv"),
            span(1, 20, 10, 1, "node.parse"),
            // Duplicate collapses.
            span(1, 20, 10, 1, "node.parse"),
        ]);
        assert_eq!(store.get(1).unwrap().spans.len(), 2);
        assert_eq!(store.latest_stitched().unwrap().trace_id, 1);
        // A later, unstitched trace does not shadow the stitched one.
        store.ingest([span(2, 30, 0, 0, "router.recv")]);
        assert_eq!(store.latest_stitched().unwrap().trace_id, 1);
        // Capacity 2: a third trace evicts the oldest.
        store.ingest([span(3, 40, 0, 0, "router.recv")]);
        assert_eq!(store.len(), 2);
        assert!(store.get(1).is_none());
        assert!(store.latest_stitched().is_none());
        // A rootless fragment (no hop-0 span held) neither creates an
        // entry nor evicts one; a late fragment for a held trace lands.
        store.ingest([span(4, 50, 0, 1, "node.parse")]);
        assert_eq!(store.len(), 2);
        assert!(store.get(4).is_none());
        store.ingest([span(3, 41, 40, 1, "node.parse")]);
        assert_eq!(store.latest_stitched().unwrap().trace_id, 3);
    }

    #[test]
    fn flight_recorder_holds_the_tail() {
        let mut m = TelemetryMerger::default();
        for seq in 1..=(FLIGHT_RECORDER_CAPACITY as u64 + 5) {
            m.ingest(ShardId(0), snap(seq, &[("kg_requests_total", 1)]));
        }
        assert_eq!(m.recorder.len(), FLIGHT_RECORDER_CAPACITY);
        let router = Obs::new(ObsConfig::default());
        router.event(kg_obs::ObsEvent::Refresh);
        let dump = m.render_flight_recorder(&router);
        assert!(dump.contains("\"snapshots\": ["));
        assert!(dump.contains("\"seq\": 69"));
        assert!(dump.contains("\"timeline\": ["));
    }
}
