//! `kgc-router` — the cluster's client-facing relay, over real UDP.
//!
//! Binds the well-known router endpoint (id 1), registers the shard
//! nodes' addresses, and relays until an admin shutdown completes.
//!
//! ```text
//! kgc-router --bind 127.0.0.1:7000 --shards 2 \
//!            --peer 0=127.0.0.1:7100 --peer 1=127.0.0.1:7101 \
//!            --span 1=2 --flight-recorder /tmp/kgc-flight.json
//! ```
//!
//! `--flight-recorder PATH` writes the telemetry flight-recorder dump
//! (merged metrics, recent raw snapshots, timeline tail) on shutdown
//! and on panic; `--no-trace` disables per-request distributed traces.

use kg_cluster::{Router, RouterEvent, ShardMap};
use kg_net::{EndpointId, Transport, UdpTransport};
use kg_obs::{Obs, ObsConfig};
use kg_wire::GroupId;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const USAGE: &str = "usage: kgc-router --bind ADDR --shards N \
[--peer SHARD=ADDR ...] [--span GROUP=SPAN ...] [--default-group G] \
[--flight-recorder PATH] [--no-trace] [--quiet]";

fn fail(msg: &str) -> ! {
    eprintln!("kgc-router: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn split_pair(s: &str, what: &str) -> (String, String) {
    match s.split_once('=') {
        Some((a, b)) => (a.to_string(), b.to_string()),
        None => fail(&format!("{what} wants KEY=VALUE, got {s}")),
    }
}

fn main() {
    let mut bind: Option<String> = None;
    let mut shards: Option<u16> = None;
    let mut peers: Vec<(u16, String)> = Vec::new();
    let mut spans: Vec<(u32, u16)> = Vec::new();
    let mut default_group: Option<u32> = None;
    let mut flight_recorder: Option<PathBuf> = None;
    let mut no_trace = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| fail(&format!("{name} needs a value")));
        match arg.as_str() {
            "--bind" => bind = Some(value("--bind")),
            "--shards" => {
                shards = Some(value("--shards").parse().unwrap_or_else(|_| fail("bad --shards")))
            }
            "--peer" => {
                let (s, addr) = split_pair(&value("--peer"), "--peer");
                peers.push((s.parse().unwrap_or_else(|_| fail("bad --peer shard id")), addr));
            }
            "--span" => {
                let (g, n) = split_pair(&value("--span"), "--span");
                spans.push((
                    g.parse().unwrap_or_else(|_| fail("bad --span group id")),
                    n.parse().unwrap_or_else(|_| fail("bad --span width")),
                ));
            }
            "--default-group" => {
                default_group =
                    Some(value("--default-group").parse().unwrap_or_else(|_| fail("bad group id")))
            }
            "--flight-recorder" => {
                flight_recorder = Some(PathBuf::from(value("--flight-recorder")))
            }
            "--no-trace" => no_trace = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument {other}")),
        }
    }
    let bind = bind.unwrap_or_else(|| fail("--bind is required"));
    let shards = shards.unwrap_or_else(|| fail("--shards is required"));

    let mut map = ShardMap::new(shards);
    for (g, n) in spans {
        map = map.with_span(GroupId(g), n);
    }

    let mut net =
        UdpTransport::bind(&bind, 1).unwrap_or_else(|e| fail(&format!("bind {bind}: {e}")));
    for (shard, addr) in peers {
        let sock = addr.parse().unwrap_or_else(|_| fail(&format!("bad peer address {addr}")));
        // Shard n serves endpoint 1000 + n, per the id convention.
        net.register_peer(EndpointId(1000 + shard as u32), sock);
    }

    let mut router = Router::new(map, &mut net, Obs::new(ObsConfig::default()));
    for shard in router.map().all_shards().collect::<Vec<_>>() {
        router.register_shard(shard, EndpointId(1000 + shard.0 as u32));
    }
    if let Some(g) = default_group {
        router.set_default_group(GroupId(g));
    }
    if no_trace {
        router.set_tracing(false);
    }
    // Flight recorder: keep the latest dump in shared memory, refreshed
    // about once a second; a panic writes the last refresh before the
    // process dies, a clean shutdown writes a final one below.
    let last_dump: Arc<Mutex<String>> = Arc::new(Mutex::new(String::new()));
    if let Some(path) = flight_recorder.clone() {
        let dump = Arc::clone(&last_dump);
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Ok(text) = dump.lock() {
                let _ = std::fs::write(&path, text.as_str());
            }
            default_hook(info);
        }));
    }
    let mut last_refresh = Instant::now();
    if !quiet {
        eprintln!(
            "kgc-router: serving {} shard(s) on {} (endpoint {})",
            shards,
            net.local_addr().map(|a| a.to_string()).unwrap_or_default(),
            router.endpoint().0,
        );
    }

    while router.is_running() {
        net.poll_io();
        for event in router.poll(&mut net) {
            match event {
                RouterEvent::ShutdownComplete { members, wal_tail } if !quiet => {
                    eprintln!(
                        "kgc-router: cluster shut down; members={members} wal_tail={wal_tail}"
                    );
                }
                e if !quiet => eprintln!("kgc-router: {e:?}"),
                _ => {}
            }
        }
        if flight_recorder.is_some() && last_refresh.elapsed() >= Duration::from_secs(1) {
            last_refresh = Instant::now();
            *last_dump.lock().expect("flight recorder lock") = router.flight_recorder_dump();
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    if let Some(path) = &flight_recorder {
        match std::fs::write(path, router.flight_recorder_dump()) {
            Ok(()) if !quiet => {
                eprintln!("kgc-router: flight recorder written to {}", path.display());
            }
            Err(e) => eprintln!("kgc-router: flight recorder write failed: {e}"),
            _ => {}
        }
    }
}
