//! `kgc-node` — one shard of a key-graph cluster, over real UDP.
//!
//! Binds a socket, attaches (or recovers) the shard's group slices, and
//! serves the cluster plane until the router relays an admin shutdown.
//!
//! ```text
//! kgc-node --shard 0 --bind 127.0.0.1:7100 --router 127.0.0.1:7000 \
//!          --dir /var/lib/kgc/shard-0 --batch-ms 100
//! ```
//!
//! Endpoint-id convention (shared with `kgc-router`/`kgc-admin`):
//! router = 1, shard `n` = 1000 + n, admin/clients from 9000.

use kg_cluster::{NodeConfig, NodeEvent, ShardNode};
use kg_net::{EndpointId, Transport, UdpTransport};
use kg_obs::{Obs, ObsConfig};
use kg_persist::PersistConfig;
use kg_server::{AccessControl, RekeyPolicy, ServerConfig};
use kg_wire::ShardId;
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "usage: kgc-node --shard N --bind ADDR --router ADDR \
[--dir PATH] [--seed N] [--degree N] [--batch-ms MS] [--max-pending N] \
[--telemetry-ms MS] [--quiet]";

fn fail(msg: &str) -> ! {
    eprintln!("kgc-node: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut shard: Option<u16> = None;
    let mut bind: Option<String> = None;
    let mut router: Option<String> = None;
    let mut dir: Option<PathBuf> = None;
    let mut template = ServerConfig::default();
    let mut batch_ms: Option<u64> = None;
    let mut max_pending: usize = 1024;
    let mut telemetry_ms: Option<u64> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| fail(&format!("{name} needs a value")));
        match arg.as_str() {
            "--shard" => {
                shard = Some(value("--shard").parse().unwrap_or_else(|_| fail("bad --shard")))
            }
            "--bind" => bind = Some(value("--bind")),
            "--router" => router = Some(value("--router")),
            "--dir" => dir = Some(PathBuf::from(value("--dir"))),
            "--seed" => {
                template.seed = value("--seed").parse().unwrap_or_else(|_| fail("bad --seed"))
            }
            "--degree" => {
                template.degree = value("--degree").parse().unwrap_or_else(|_| fail("bad --degree"))
            }
            "--batch-ms" => {
                batch_ms =
                    Some(value("--batch-ms").parse().unwrap_or_else(|_| fail("bad --batch-ms")))
            }
            "--max-pending" => {
                max_pending =
                    value("--max-pending").parse().unwrap_or_else(|_| fail("bad --max-pending"))
            }
            "--telemetry-ms" => {
                telemetry_ms = Some(
                    value("--telemetry-ms").parse().unwrap_or_else(|_| fail("bad --telemetry-ms")),
                )
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument {other}")),
        }
    }
    let shard = ShardId(shard.unwrap_or_else(|| fail("--shard is required")));
    let bind = bind.unwrap_or_else(|| fail("--bind is required"));
    let router_addr = router.unwrap_or_else(|| fail("--router is required"));
    if let Some(interval_ms) = batch_ms {
        template.rekey = RekeyPolicy::Batched { interval_ms, max_pending };
    }

    let mut net = UdpTransport::bind(&bind, 1000 + shard.0 as u32)
        .unwrap_or_else(|e| fail(&format!("bind {bind}: {e}")));
    let router_ep = EndpointId(1);
    let router_sock =
        router_addr.parse().unwrap_or_else(|_| fail(&format!("bad router address {router_addr}")));
    net.register_peer(router_ep, router_sock);

    let endpoint = net.endpoint(); // 1000 + shard, per the id convention
    let config = NodeConfig {
        shard,
        template,
        acl: AccessControl::AllowAll,
        persist_root: dir,
        persist: PersistConfig::default(),
        telemetry_interval_ms: telemetry_ms,
    };
    // `resume` with an empty or absent root is a fresh start; with
    // existing slice directories it is crash recovery.
    let mut node = ShardNode::resume(config, endpoint, router_ep, Obs::new(ObsConfig::default()))
        .unwrap_or_else(|e| fail(&format!("recovery failed: {e}")));
    if !quiet {
        eprintln!(
            "kgc-node: shard {} serving on {} (endpoint {}), {} slice(s) recovered",
            shard.0,
            net.local_addr().map(|a| a.to_string()).unwrap_or_default(),
            endpoint.0,
            node.slices().count(),
        );
    }

    while node.is_running() {
        net.poll_io();
        let now_ms = net.now_us() / 1000;
        for event in node.tick(&mut net, now_ms) {
            match event {
                NodeEvent::ShutdownComplete { members, wal_tail } if !quiet => {
                    eprintln!(
                        "kgc-node: shard {} shut down; members={members} wal_tail={wal_tail}",
                        shard.0
                    );
                }
                e if !quiet => eprintln!("kgc-node: {e:?}"),
                _ => {}
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}
