//! `kgc-admin` — drive a running cluster from the command line.
//!
//! Plays both the admin plane (stats, shutdown) and a scripted client
//! fleet (`session`), which is what the CI smoke test runs:
//!
//! ```text
//! kgc-admin --router 127.0.0.1:7000 session --group 1 --users 8
//! kgc-admin --router 127.0.0.1:7000 stats --expect 2
//! kgc-admin --router 127.0.0.1:7000 metrics --format prom
//! kgc-admin --router 127.0.0.1:7000 trace --id last
//! kgc-admin --router 127.0.0.1:7000 shutdown
//! ```
//!
//! `metrics` prints the router's merged cluster-wide view (every
//! shard's pushed telemetry summed with the router's own registry);
//! `trace` prints one reassembled cross-process trace as an indented
//! span tree (`--id last` = the latest fully stitched one).
//!
//! `shutdown` prints the aggregated `members=… wal_tail=…` summary ack;
//! `wal_tail=0` is the proof that every shard's final snapshot landed and
//! a restart would replay nothing.

use bytes::Bytes;
use kg_core::ids::UserId;
use kg_net::{EndpointId, Transport, UdpTransport};
use kg_obs::trace::reassemble;
use kg_obs::TraceSpan;
use kg_server::net::leave_authenticator;
use kg_wire::{ClusterBody, ClusterEnvelope, ControlMessage, GroupId, ROUTER_SHARD};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: kgc-admin --router ADDR [--timeout-ms MS] \
(session --group G --users N [--batch-ms MS] | stats --expect N \
| metrics [--format prom|json] | trace [--id N|last] | shutdown)";

fn fail(msg: &str) -> ! {
    eprintln!("kgc-admin: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// Everything the admin endpoint can receive back from the router.
enum Inbound {
    Grant(GroupId, UserId, Vec<u8>),
    JoinAck(UserId, bool),
    LeaveAck(UserId, bool),
    Stats(u16, [u64; 5]),
    ShutdownSummary(u64, u64),
    Metrics(String),
    TraceSpans(u64, Vec<TraceSpan>),
    Rekey,
}

struct Admin {
    net: UdpTransport,
    endpoint: EndpointId,
    router: EndpointId,
}

impl Admin {
    fn send_env(&mut self, group: GroupId, body: ClusterBody) {
        let env = ClusterEnvelope::new(ROUTER_SHARD, group, body);
        self.net.send_unicast(self.endpoint, self.router, Bytes::from(env.encode()));
    }

    /// Poll until one inbound message arrives or `deadline` passes.
    fn recv(&mut self, deadline: Instant) -> Option<Inbound> {
        loop {
            self.net.poll_io();
            if let Some(dg) = self.net.recv(self.endpoint) {
                if ClusterEnvelope::sniff(&dg.payload) {
                    let Ok(env) = ClusterEnvelope::decode(&dg.payload) else { continue };
                    match env.body {
                        ClusterBody::Grant { user, key, .. } => {
                            return Some(Inbound::Grant(env.group, user, key));
                        }
                        ClusterBody::ShutdownAck { members, wal_tail }
                            if env.shard == ROUTER_SHARD =>
                        {
                            return Some(Inbound::ShutdownSummary(members, wal_tail));
                        }
                        ClusterBody::StatsReport {
                            members,
                            intervals,
                            requests,
                            encryptions,
                            pending,
                        } => {
                            return Some(Inbound::Stats(
                                env.shard.0,
                                [members, intervals, requests, encryptions, pending],
                            ));
                        }
                        ClusterBody::MetricsReport { text } => {
                            return Some(Inbound::Metrics(text));
                        }
                        ClusterBody::TraceReport { trace_id, spans } => {
                            return Some(Inbound::TraceSpans(trace_id, spans));
                        }
                        _ => continue,
                    }
                }
                return Some(match ControlMessage::decode(&dg.payload) {
                    Ok(ControlMessage::JoinGranted { user, .. }) => Inbound::JoinAck(user, true),
                    Ok(ControlMessage::JoinDenied { user }) => Inbound::JoinAck(user, false),
                    Ok(ControlMessage::LeaveGranted { user }) => Inbound::LeaveAck(user, true),
                    Ok(ControlMessage::LeaveDenied { user }) => Inbound::LeaveAck(user, false),
                    // Anything else on this port is rekey traffic.
                    _ => Inbound::Rekey,
                });
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

fn session(admin: &mut Admin, group: GroupId, users: u64, timeout: Duration) -> i32 {
    // Join everyone, then wait until every member holds a grant AND a
    // join ack (batched shards deliver both only at the interval flush).
    for u in 1..=users {
        admin
            .send_env(group, ClusterBody::Control(ControlMessage::JoinRequest { user: UserId(u) }));
    }
    let mut keys: BTreeMap<UserId, Vec<u8>> = BTreeMap::new();
    let mut join_acks = 0u64;
    let mut rekeys = 0u64;
    let deadline = Instant::now() + timeout;
    while (keys.len() as u64) < users || join_acks < users {
        match admin.recv(deadline) {
            Some(Inbound::Grant(g, user, key)) if g == group => {
                keys.insert(user, key);
            }
            Some(Inbound::JoinAck(_, true)) => join_acks += 1,
            Some(Inbound::JoinAck(user, false)) => {
                eprintln!("kgc-admin: join denied for {user:?}");
                return 1;
            }
            Some(Inbound::Rekey) => rekeys += 1,
            Some(_) => {}
            None => {
                eprintln!("kgc-admin: timed out joining; {} grants, {join_acks} acks", keys.len());
                return 1;
            }
        }
    }
    println!("joined {users} members ({rekeys} rekey packets so far)");

    for (&user, key) in &keys {
        let auth = leave_authenticator(user, key);
        admin.send_env(group, ClusterBody::Control(ControlMessage::LeaveRequest { user, auth }));
    }
    let mut leave_acks = 0u64;
    let deadline = Instant::now() + timeout;
    while leave_acks < users {
        match admin.recv(deadline) {
            Some(Inbound::LeaveAck(_, true)) => leave_acks += 1,
            Some(Inbound::LeaveAck(user, false)) => {
                eprintln!("kgc-admin: leave denied for {user:?}");
                return 1;
            }
            Some(Inbound::Rekey) => rekeys += 1,
            Some(_) => {}
            None => {
                eprintln!("kgc-admin: timed out leaving; {leave_acks}/{users} acks");
                return 1;
            }
        }
    }
    println!("left {users} members; session saw {rekeys} rekey packets");
    0
}

/// Fetch and print the merged cluster metrics view.
fn metrics(admin: &mut Admin, format: u8, timeout: Duration) -> i32 {
    admin.send_env(GroupId(0), ClusterBody::MetricsRequest { format });
    let deadline = Instant::now() + timeout;
    loop {
        match admin.recv(deadline) {
            Some(Inbound::Metrics(text)) => {
                print!("{text}");
                break 0;
            }
            Some(_) => {}
            None => {
                eprintln!("kgc-admin: timed out waiting for the metrics report");
                break 1;
            }
        }
    }
}

/// Fetch one trace (0 = latest stitched) and print its span tree. The
/// request is retried until the deadline: spans reach the router on the
/// nodes' telemetry cadence, so right after a session the trace store
/// may briefly lag the traffic.
fn trace(admin: &mut Admin, trace_id: u64, timeout: Duration) -> i32 {
    let deadline = Instant::now() + timeout;
    loop {
        admin.send_env(GroupId(0), ClusterBody::TraceRequest { trace_id });
        let attempt = (Instant::now() + Duration::from_millis(500)).min(deadline);
        match admin.recv(attempt) {
            Some(Inbound::TraceSpans(id, spans)) if id != 0 => {
                for t in reassemble(spans) {
                    print!("{}", t.render());
                }
                return 0;
            }
            Some(_) | None => {}
        }
        if Instant::now() >= deadline {
            eprintln!("kgc-admin: timed out waiting for a reassembled trace");
            return 1;
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

fn main() {
    let mut router: Option<String> = None;
    let mut timeout = Duration::from_millis(30_000);
    let mut command: Option<String> = None;
    let mut group = 1u32;
    let mut users = 8u64;
    let mut expect = 1usize;
    let mut format = 0u8;
    let mut trace_id = 0u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| fail(&format!("{name} needs a value")));
        match arg.as_str() {
            "--router" => router = Some(value("--router")),
            "--timeout-ms" => {
                timeout = Duration::from_millis(
                    value("--timeout-ms").parse().unwrap_or_else(|_| fail("bad --timeout-ms")),
                )
            }
            "--group" => group = value("--group").parse().unwrap_or_else(|_| fail("bad --group")),
            "--users" => users = value("--users").parse().unwrap_or_else(|_| fail("bad --users")),
            "--expect" => {
                expect = value("--expect").parse().unwrap_or_else(|_| fail("bad --expect"))
            }
            "--format" => {
                format = match value("--format").as_str() {
                    "prom" | "prometheus" => 0,
                    "json" => 1,
                    other => fail(&format!("bad --format {other} (want prom or json)")),
                }
            }
            "--id" => {
                let v = value("--id");
                trace_id = if v == "last" {
                    0
                } else {
                    v.parse().unwrap_or_else(|_| fail("bad --id (want a trace id or 'last')"))
                };
            }
            "session" | "stats" | "metrics" | "trace" | "shutdown" => command = Some(arg),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument {other}")),
        }
    }
    let router_addr = router.unwrap_or_else(|| fail("--router is required"));
    let command = command.unwrap_or_else(|| fail("a command is required"));

    let mut net =
        UdpTransport::bind("127.0.0.1:0", 9000).unwrap_or_else(|e| fail(&format!("bind: {e}")));
    let router_ep = EndpointId(1);
    net.register_peer(
        router_ep,
        router_addr.parse().unwrap_or_else(|_| fail(&format!("bad router address {router_addr}"))),
    );
    let endpoint = net.endpoint();
    let mut admin = Admin { net, endpoint, router: router_ep };

    let code = match command.as_str() {
        "session" => session(&mut admin, GroupId(group), users, timeout),
        "metrics" => metrics(&mut admin, format, timeout),
        "trace" => trace(&mut admin, trace_id, timeout),
        "stats" => {
            admin.send_env(GroupId(0), ClusterBody::StatsRequest);
            let deadline = Instant::now() + timeout;
            let mut seen = 0usize;
            while seen < expect {
                match admin.recv(deadline) {
                    Some(Inbound::Stats(
                        shard,
                        [members, intervals, requests, encryptions, pending],
                    )) => {
                        println!(
                            "shard {shard}: members={members} intervals={intervals} \
requests={requests} encryptions={encryptions} pending={pending}"
                        );
                        seen += 1;
                    }
                    Some(_) => {}
                    None => {
                        eprintln!("kgc-admin: timed out; {seen}/{expect} stats reports");
                        break;
                    }
                }
            }
            i32::from(seen < expect)
        }
        "shutdown" => {
            admin.send_env(GroupId(0), ClusterBody::Shutdown);
            let deadline = Instant::now() + timeout;
            loop {
                match admin.recv(deadline) {
                    Some(Inbound::ShutdownSummary(members, wal_tail)) => {
                        println!("cluster stopped: members={members} wal_tail={wal_tail}");
                        break 0;
                    }
                    Some(_) => {}
                    None => {
                        eprintln!("kgc-admin: timed out waiting for the shutdown summary");
                        break 1;
                    }
                }
            }
        }
        _ => unreachable!("validated above"),
    };
    std::process::exit(code);
}
