//! # kg-cluster: sharded multi-server key-graph deployment
//!
//! Wong/Gouda/Lam's key-graph server (§3–5 of the paper) scales in tree
//! height, but a single process still bounds group count and total
//! membership. This crate spreads the load over N **shard nodes** behind
//! one **router**:
//!
//! * [`ShardMap`] — pure-hash assignment of groups to shards. Oversized
//!   groups can be *spanned*: their membership splits over consecutive
//!   shards, each holding an independent key tree for its slice (the
//!   Iolus-style decomposition the paper's §6 compares against, with the
//!   router standing in for the GSA hierarchy).
//! * [`ShardNode`] — hosts one [`kg_server::GroupKeyServer`] per assigned
//!   group slice, each with its own WAL/snapshot directory and a shared
//!   per-shard [`kg_obs::Obs`] registry.
//! * [`Router`] — the client-facing relay: forwards join/leave requests to
//!   the owning shard, relays grants/acks back, fans rekey bundles out to
//!   slice multicast groups or unicast target sets, and aggregates the
//!   admin plane (refresh, stats, coordinated shutdown).
//! * [`TelemetryMerger`] — the router-side telemetry plane: merges the
//!   nodes' periodic snapshot pushes into one cluster-wide metrics view
//!   and stores cross-process trace spans for reassembly.
//! * [`SimCluster`] — the whole deployment in one process on the
//!   deterministic [`kg_net::SimNetwork`], for tests and benchmarks.
//!
//! The `kgc-node`, `kgc-router`, and `kgc-admin` binaries run the same
//! components over real UDP sockets ([`kg_net::UdpTransport`]); everything
//! in between is generic over [`kg_net::Transport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod map;
pub mod node;
pub mod router;
pub mod sim;
pub mod telemetry;

pub use map::{group_seed, mix64, ShardMap};
pub use node::{NodeConfig, NodeEvent, ShardNode, REKEY_USERS_CHUNK, TELEMETRY_SPAN_TAIL};
pub use router::{Router, RouterEvent};
pub use sim::{GrantInfo, MemberTraffic, SimCluster};
pub use telemetry::{TelemetryMerger, TraceStore, FLIGHT_RECORDER_CAPACITY, TRACE_STORE_CAPACITY};

/// Sum per-shard counter snapshots (as produced by
/// [`kg_obs::Obs::counter_values`]) into one aggregated view, keyed by
/// rendered counter name.
pub fn aggregate_counter_values<'a, I>(snapshots: I) -> Vec<(String, u64)>
where
    I: IntoIterator<Item = &'a Vec<(String, u64)>>,
{
    let mut sums = std::collections::BTreeMap::new();
    for snap in snapshots {
        for (name, value) in snap {
            *sums.entry(name.clone()).or_insert(0u64) += value;
        }
    }
    sums.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_sums_by_name() {
        let a = vec![("x".to_string(), 1), ("y".to_string(), 2)];
        let b = vec![("y".to_string(), 3), ("z".to_string(), 4)];
        assert_eq!(
            aggregate_counter_values([&a, &b]),
            vec![("x".to_string(), 1), ("y".to_string(), 5), ("z".to_string(), 4)]
        );
    }
}
