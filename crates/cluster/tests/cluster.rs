//! End-to-end cluster tests on the deterministic simulator.
//!
//! The load-bearing property: **sharding is invisible**. Any schedule of
//! joins/leaves/refreshes/interval ticks routed through the cluster must
//! leave every member with exactly the keyset a standalone
//! [`GroupKeyServer`] run of the same slice sub-schedule produces — for
//! one shard, that IS the single-server deployment. The reference is
//! rebuilt per slice with the same [`group_seed`]-derived config the node
//! uses, so key material (not just membership) must match byte for byte.

use kg_cluster::{group_seed, ShardMap, SimCluster};
use kg_core::ids::UserId;
use kg_core::rekey::Strategy;
use kg_net::NetConfig;
use kg_server::{AccessControl, GroupKeyServer, RekeyPolicy, ServerConfig};
use kg_wire::{GroupId, ShardId};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// A benign deterministic LAN: fixed latency (no jitter ⇒ no reordering),
/// no loss — delivery order equals send order, so the cluster processes
/// the schedule exactly as the reference does.
fn lan() -> NetConfig {
    NetConfig {
        latency_min_us: 100,
        latency_max_us: 100,
        loss_probability: 0.0,
        duplicate_probability: 0.0,
        seed: 7,
    }
}

fn unique_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static N: AtomicU32 = AtomicU32::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("kg-cluster-{tag}-{}-{n}", std::process::id()))
}

const INTERVAL_MS: u64 = 100;

fn template(seed: u64, batched: bool) -> ServerConfig {
    ServerConfig {
        seed,
        rekey: if batched {
            RekeyPolicy::Batched { interval_ms: INTERVAL_MS, max_pending: usize::MAX }
        } else {
            RekeyPolicy::Immediate
        },
        ..ServerConfig::default()
    }
}

/// One step of a routed schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Join(GroupId, UserId),
    Leave(GroupId, UserId),
    Refresh(GroupId),
    /// Advance the clock one interval and flush due batches.
    Tick,
}

/// Standalone per-slice servers fed the same sub-schedule the shard map
/// routes to each shard — the "no cluster" baseline.
struct Reference {
    map: ShardMap,
    template: ServerConfig,
    servers: BTreeMap<(GroupId, ShardId), GroupKeyServer>,
}

impl Reference {
    fn new(map: ShardMap, template: ServerConfig) -> Self {
        Reference { map, template, servers: BTreeMap::new() }
    }

    fn server(&mut self, group: GroupId, shard: ShardId) -> &mut GroupKeyServer {
        let tpl = &self.template;
        self.servers.entry((group, shard)).or_insert_with(|| {
            let config = ServerConfig { seed: group_seed(tpl.seed, shard, group), ..tpl.clone() };
            GroupKeyServer::new(config, AccessControl::AllowAll)
        })
    }

    fn apply(&mut self, op: Op, now_ms: u64) {
        match op {
            Op::Join(g, u) => {
                let shard = self.map.owner(g, u);
                let s = self.server(g, shard);
                if s.is_batched() {
                    s.enqueue_join(u).expect("reference enqueue join");
                } else {
                    s.handle_join(u).expect("reference join");
                }
            }
            Op::Leave(g, u) => {
                let shard = self.map.owner(g, u);
                let s = self.server(g, shard);
                if s.is_batched() {
                    s.enqueue_leave(u).expect("reference enqueue leave");
                } else {
                    s.handle_leave(u).expect("reference leave");
                }
            }
            Op::Refresh(g) => {
                // The router forwards to the span in shard order; only
                // already-instantiated slices rotate (the node's no-op
                // rule for unhosted groups).
                for shard in self.map.shards_of(g) {
                    if self.servers.contains_key(&(g, shard)) {
                        self.server(g, shard).refresh_group_key().expect("reference refresh");
                    }
                }
            }
            Op::Tick => {
                for s in self.servers.values_mut() {
                    s.tick(now_ms).expect("reference tick");
                }
            }
        }
    }
}

/// Materialize a raw command stream into a valid schedule: joins use
/// fresh users, leaves pick currently-admitted members (tracking batch
/// admission at tick boundaries), and the schedule ends with enough
/// ticks to flush everything.
fn materialize(
    raw: &[(u8, u64)],
    groups: &[GroupId],
    batched: bool,
) -> (Vec<Op>, BTreeSet<(GroupId, UserId)>) {
    let mut ops = Vec::new();
    let mut admitted: BTreeSet<(GroupId, UserId)> = BTreeSet::new();
    let mut pending_join: Vec<(GroupId, UserId)> = Vec::new();
    let mut leaving: BTreeSet<(GroupId, UserId)> = BTreeSet::new();
    let mut next_user = 1u64;
    for &(cmd, pick) in raw {
        let g = groups[(pick % groups.len() as u64) as usize];
        match cmd % 10 {
            0..=4 => {
                let u = UserId(next_user);
                next_user += 1;
                ops.push(Op::Join(g, u));
                if batched {
                    pending_join.push((g, u));
                } else {
                    admitted.insert((g, u));
                }
            }
            5..=7 => {
                let eligible: Vec<_> = admitted.difference(&leaving).copied().collect();
                if eligible.is_empty() {
                    continue;
                }
                let (g, u) = eligible[(pick % eligible.len() as u64) as usize];
                ops.push(Op::Leave(g, u));
                if batched {
                    leaving.insert((g, u));
                } else {
                    admitted.remove(&(g, u));
                }
            }
            8 => ops.push(Op::Refresh(g)),
            _ => {
                ops.push(Op::Tick);
                admitted.extend(pending_join.drain(..));
                for gu in std::mem::take(&mut leaving) {
                    admitted.remove(&gu);
                }
            }
        }
    }
    // Flush the tail so every join has a grant to compare.
    ops.push(Op::Tick);
    admitted.extend(pending_join.drain(..));
    for gu in std::mem::take(&mut leaving) {
        admitted.remove(&gu);
    }
    (ops, admitted)
}

/// Drive `ops` through both the cluster and the reference, then assert
/// every admitted member's keyset matches byte for byte.
fn run_equivalence(
    shards: u16,
    span: u16,
    batched: bool,
    strategy: Strategy,
    ops: &[Op],
    admitted: &BTreeSet<(GroupId, UserId)>,
) {
    let spanned = GroupId(1);
    let map = ShardMap::new(shards).with_span(spanned, span);
    let tpl = ServerConfig { strategy, ..template(42, batched) };
    let mut cluster =
        SimCluster::new(map.clone(), tpl.clone(), AccessControl::AllowAll, lan(), None);
    let mut reference = Reference::new(map.clone(), tpl);
    let mut now_ms = 0u64;
    for &op in ops {
        match op {
            Op::Join(g, u) => cluster.join(g, u),
            Op::Leave(g, u) => {
                // The cluster-side leave needs the grant; deliver it.
                cluster.settle();
                cluster.leave(g, u);
            }
            Op::Refresh(g) => cluster.refresh(g),
            Op::Tick => {
                now_ms += INTERVAL_MS;
                cluster.tick(now_ms);
            }
        }
        reference.apply(op, now_ms);
    }
    cluster.settle();

    for &(g, u) in admitted {
        let shard = map.owner(g, u);
        let cluster_ks = cluster
            .slice_server(g, u)
            .unwrap_or_else(|| panic!("cluster hosts {g:?} slice for {u:?}"))
            .tree()
            .keyset(u);
        let reference_ks = reference.server(g, shard).tree().keyset(u);
        assert!(cluster_ks.is_some(), "{u:?} admitted in cluster run of {g:?}");
        assert_eq!(cluster_ks, reference_ks, "keyset mismatch for {u:?} in {g:?}");
        assert!(cluster.grant(g, u).is_some(), "{u:?} holds a grant");
    }
    // Membership matches slice by slice, not just for sampled users.
    for g in [GroupId(1), GroupId(2)] {
        for shard in map.shards_of(g) {
            let want = reference.servers.get(&(g, shard)).map_or(0, |s| s.group_size());
            let got = cluster
                .nodes
                .iter()
                .find(|n| n.shard() == shard)
                .and_then(|n| n.group(g))
                .map_or(0, |s| s.group_size());
            assert_eq!(got, want, "slice size mismatch for {g:?} on {shard:?}");
        }
    }
}

#[test]
fn smoke_immediate_mode_session() {
    let g = GroupId(2);
    let map = ShardMap::new(2);
    let mut cluster =
        SimCluster::new(map, template(1, false), AccessControl::AllowAll, lan(), None);
    for u in 1..=6 {
        cluster.join(g, UserId(u));
    }
    cluster.settle();
    assert_eq!(cluster.group_size(g), 6);
    for u in 1..=6 {
        assert!(cluster.grant(g, UserId(u)).is_some(), "user {u} granted");
        let t = cluster.traffic(g, UserId(u));
        assert!(t.acks >= 1, "user {u} acked");
    }
    // Later joiners' rekey traffic reaches earlier members via the slice
    // multicast / unicast sets.
    assert!(cluster.traffic(g, UserId(1)).rekeys > 0, "member 1 saw rekeys");
    cluster.leave(g, UserId(3));
    cluster.settle();
    assert_eq!(cluster.group_size(g), 5);
    cluster.refresh(g);
    cluster.settle();
    assert_eq!(cluster.group_size(g), 5);
    let (_, router_events) = cluster.take_events();
    assert!(!router_events.is_empty());
}

#[test]
fn unauthenticated_leave_is_denied() {
    let g = GroupId(2);
    let mut cluster =
        SimCluster::new(ShardMap::new(2), template(1, false), AccessControl::AllowAll, lan(), None);
    cluster.join(g, UserId(1));
    cluster.settle();
    // Forge a leave with the wrong key: the shard must refuse it.
    let bogus = kg_server::net::leave_authenticator(UserId(1), b"not-the-individual-key");
    let ep = cluster.client_endpoint(g, UserId(1));
    let env = kg_wire::ClusterEnvelope::new(
        kg_wire::ROUTER_SHARD,
        g,
        kg_wire::ClusterBody::Control(kg_wire::ControlMessage::LeaveRequest {
            user: UserId(1),
            auth: bogus,
        }),
    );
    let router = cluster.router.endpoint();
    cluster.net.send_unicast(ep, router, bytes::Bytes::from(env.encode()));
    cluster.settle();
    assert_eq!(cluster.group_size(g), 1, "member still admitted");
}

#[test]
fn equivalence_fixed_batched_spanned() {
    // A deterministic schedule covering the interesting transitions:
    // spanned group, batched intervals, leaves and refreshes interleaved.
    let groups = [GroupId(1), GroupId(2)];
    let raw: Vec<(u8, u64)> = (0..60u64).map(|i| ((i % 10) as u8, i * 7 + 3)).collect();
    let (ops, admitted) = materialize(&raw, &groups, true);
    run_equivalence(4, 3, true, Strategy::GroupOriented, &ops, &admitted);
}

#[test]
fn equivalence_derived_strategy_immediate() {
    // Client-derived rekeying draws derivation codes from the same DRBG
    // as the keys, so sharding must preserve the exact draw schedule:
    // any divergence shows up as a keyset mismatch here.
    let groups = [GroupId(1), GroupId(2)];
    let raw: Vec<(u8, u64)> = (0..60u64).map(|i| ((i % 9) as u8, i * 11 + 5)).collect();
    let (ops, admitted) = materialize(&raw, &groups, false);
    run_equivalence(3, 2, false, Strategy::Derived, &ops, &admitted);
}

#[test]
fn equivalence_derived_strategy_batched() {
    let groups = [GroupId(1), GroupId(2)];
    let raw: Vec<(u8, u64)> = (0..60u64).map(|i| ((i % 10) as u8, i * 17 + 9)).collect();
    let (ops, admitted) = materialize(&raw, &groups, true);
    run_equivalence(4, 3, true, Strategy::Derived, &ops, &admitted);
}

#[test]
fn equivalence_single_shard_is_single_server() {
    // shards = 1: the cluster degenerates to the literal single-server
    // deployment, routed through the relay.
    let groups = [GroupId(1), GroupId(2)];
    let raw: Vec<(u8, u64)> = (0..40u64).map(|i| ((i % 9) as u8, i * 13 + 1)).collect();
    let (ops, admitted) = materialize(&raw, &groups, false);
    run_equivalence(1, 1, false, Strategy::GroupOriented, &ops, &admitted);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any schedule, any shard count (1..=4), spanned or not, immediate
    /// or batched: cluster keysets equal single-server keysets.
    #[test]
    fn cluster_routes_any_schedule_like_a_single_server(
        raw in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..50),
        shards in 1..=4u16,
        span in 1..=4u16,
        batched in any::<bool>(),
        derived in any::<bool>(),
    ) {
        let groups = [GroupId(1), GroupId(2)];
        let strategy = if derived { Strategy::Derived } else { Strategy::GroupOriented };
        let (ops, admitted) = materialize(&raw, &groups, batched);
        run_equivalence(shards, span.min(shards), batched, strategy, &ops, &admitted);
    }
}

#[test]
fn shard_crash_mid_interval_recovers_and_converges() {
    let g = GroupId(1);
    let root = unique_dir("crash");
    let map = ShardMap::new(2).with_span(g, 2);
    let tpl = template(9, true);
    let mut cluster =
        SimCluster::new(map.clone(), tpl.clone(), AccessControl::AllowAll, lan(), Some(&root));
    let mut reference = Reference::new(map.clone(), tpl);
    let mut now_ms = 0;

    // Interval 1: admit a base population.
    for u in 1..=8 {
        cluster.join(g, UserId(u));
        reference.apply(Op::Join(g, UserId(u)), now_ms);
    }
    now_ms += INTERVAL_MS;
    cluster.tick(now_ms);
    reference.apply(Op::Tick, now_ms);

    // Mid-interval 2: more churn lands in the shards' queues (WAL-logged
    // as enqueues) but is NOT yet flushed...
    for u in 9..=12 {
        cluster.join(g, UserId(u));
        reference.apply(Op::Join(g, UserId(u)), now_ms);
    }
    cluster.settle();
    cluster.leave(g, UserId(2));
    reference.apply(Op::Leave(g, UserId(2)), now_ms);
    cluster.settle();

    // ...then one shard dies and comes back from WAL + snapshot, with
    // its pending queue intact.
    let victim = map.home(g);
    cluster.crash_node(victim);
    cluster.recover_node(victim).expect("node recovers from its slice directories");

    // Interval 2 flushes after recovery; then one more interval of churn.
    now_ms += INTERVAL_MS;
    cluster.tick(now_ms);
    reference.apply(Op::Tick, now_ms);
    for u in 13..=16 {
        cluster.join(g, UserId(u));
        reference.apply(Op::Join(g, UserId(u)), now_ms);
    }
    cluster.settle();
    cluster.leave(g, UserId(5));
    reference.apply(Op::Leave(g, UserId(5)), now_ms);
    now_ms += INTERVAL_MS;
    cluster.tick(now_ms);
    reference.apply(Op::Tick, now_ms);

    let admitted: BTreeSet<UserId> =
        (1..=16).map(UserId).filter(|u| ![UserId(2), UserId(5)].contains(u)).collect();
    assert_eq!(cluster.group_size(g), admitted.len());
    for &u in &admitted {
        let shard = map.owner(g, u);
        let cluster_ks = cluster.slice_server(g, u).expect("hosted").tree().keyset(u);
        let reference_ks = reference.server(g, shard).tree().keyset(u);
        assert!(cluster_ks.is_some(), "{u:?} admitted after crash");
        assert_eq!(cluster_ks, reference_ks, "crash+recover diverged for {u:?}");
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn telemetry_merges_and_traces_stitch() {
    let g = GroupId(2);
    let mut cluster =
        SimCluster::new(ShardMap::new(2), template(3, false), AccessControl::AllowAll, lan(), None);
    cluster.enable_telemetry(50);
    for u in 1..=6 {
        cluster.join(g, UserId(u));
    }
    cluster.settle();
    cluster.leave(g, UserId(3));
    cluster.settle();
    // First tick past the interval: every node pushes a snapshot with
    // its counter deltas and the trace spans recorded so far.
    cluster.tick(100);

    cluster.request_metrics(0);
    cluster.request_trace(0);
    cluster.settle();
    let replies = cluster.take_admin_replies();

    let metrics = replies
        .iter()
        .find_map(|env| match &env.body {
            kg_wire::ClusterBody::MetricsReport { text } => Some(text.clone()),
            _ => None,
        })
        .expect("router answered the metrics request");
    // The merged view carries both node-pushed server counters and the
    // router-side telemetry-plane gauges.
    assert!(metrics.contains("kg_requests_total"), "merged node counters present:\n{metrics}");
    assert!(
        metrics.contains("kg_cluster_telemetry_snapshots_total"),
        "per-shard stream health present:\n{metrics}"
    );
    assert!(metrics.contains("kg_cluster_shard_skew_pct"), "skew gauge present:\n{metrics}");

    let (trace_id, spans) = replies
        .iter()
        .find_map(|env| match &env.body {
            kg_wire::ClusterBody::TraceReport { trace_id, spans } => {
                Some((*trace_id, spans.clone()))
            }
            _ => None,
        })
        .expect("router answered the trace request");
    assert_ne!(trace_id, 0, "a fully-stitched trace exists");
    let traces = kg_obs::trace::reassemble(spans);
    assert_eq!(traces.len(), 1, "the report holds exactly one trace");
    let trace = &traces[0];
    assert_eq!(trace.trace_id, trace_id);
    assert!(trace.is_stitched(), "router and node halves joined up");
    let hops = trace.hops();
    assert!(hops.contains(&0) && hops.contains(&1), "both sides present: {hops:?}");
    assert!(
        trace.spans.iter().any(|s| s.hop == 0 && s.path == "router.recv"),
        "router request-side root present"
    );
    assert!(
        trace.spans.iter().any(|s| s.hop == 1 && s.path == "node.parse"),
        "node-internal root present"
    );
    // The router-observed window (ingress to fan-out, one clock) covers
    // the node-internal processing window.
    let router_window = trace.window_us(&[0, 2]);
    let node_window = trace.window_us(&[1]);
    assert!(router_window > 0, "router window observed");
    assert!(node_window <= router_window, "node work fits the end-to-end window");
    let rendered = trace.render();
    assert!(rendered.contains("router.recv"), "render names the root:\n{rendered}");

    // The flight recorder holds the recent snapshots and the merged view.
    let dump = cluster.router.flight_recorder_dump();
    assert!(dump.contains("\"snapshots\""), "flight recorder captured pushes:\n{dump}");
}

#[test]
fn clean_shutdown_leaves_zero_wal_tail() {
    let g = GroupId(1);
    let root = unique_dir("shutdown");
    let map = ShardMap::new(3).with_span(g, 3);
    let mut cluster = SimCluster::new(
        map.clone(),
        template(5, true),
        AccessControl::AllowAll,
        lan(),
        Some(&root),
    );
    for u in 1..=20 {
        cluster.join(g, UserId(u));
    }
    cluster.settle();
    // Shutdown arrives MID-INTERVAL: the queues still hold all 20 joins.
    // The admin handshake must flush them, snapshot, and leave nothing
    // for a restart to replay.
    let (members, wal_tail) = cluster.shutdown();
    assert_eq!(members, 20, "final flush ran before the ack");
    assert_eq!(wal_tail, 0, "final snapshots cover the whole WAL");

    // A restart replays nothing and sees the full membership.
    for shard in map.all_shards() {
        cluster.net.restart(cluster.nodes[shard.0 as usize].endpoint());
        cluster.recover_node(shard).expect("clean restart");
    }
    assert_eq!(cluster.group_size(g), 20);
    for node in &cluster.nodes {
        assert_eq!(node.wal_tail_total(), 0, "nothing replayed on {:?}", node.shard());
    }
    std::fs::remove_dir_all(&root).ok();
}
