//! Crash–recovery integration tests for the `kg-persist` subsystem.
//!
//! The headline property: kill the key server at a random point *inside*
//! a batched rekey interval — queued requests not yet flushed — recover
//! it from the write-ahead log, and prove that (a) the recovered key tree
//! is byte-identical (root digest), (b) no member desyncs: every live
//! client still tracks the server's group key through the post-recovery
//! flush, and (c) no stale key survives: departed members remain locked
//! out of the current group key. A second suite drives the same scenario
//! over the simulated network using its crash fault mode and
//! [`NetServer::resume`].

use bytes::Bytes;
use keygraphs::client::{Client, VerifyPolicy};
use keygraphs::core::ids::UserId;
use keygraphs::core::rekey::{KeyCipher, Strategy};
use keygraphs::core::serial::root_digest;
use keygraphs::net::{NetConfig, SimNetwork};
use keygraphs::persist::{FsyncPolicy, PersistConfig};
use keygraphs::server::net::{leave_authenticator, NetServer, ServerEvent};
use keygraphs::server::{AccessControl, AuthPolicy, GroupKeyServer, RekeyPolicy, ServerConfig};
use keygraphs::wire::{BatchRekeyPacket, ControlMessage};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("kg-crash-{tag}-{}-{n}", std::process::id()))
}

fn batched_config(seed: u64) -> ServerConfig {
    ServerConfig {
        auth: AuthPolicy::None,
        seed,
        strategy: Strategy::GroupOriented,
        rekey: RekeyPolicy::Batched { interval_ms: 1_000, max_pending: usize::MAX },
        ..ServerConfig::default()
    }
}

fn pcfg() -> PersistConfig {
    PersistConfig { fsync: FsyncPolicy::EveryRecord, ..PersistConfig::default() }
}

/// A batched, persisted server plus live decrypting clients — the
/// durability analogue of the secrecy suite's `BatchWorld`. The server
/// can crash (be dropped) and be rebuilt from disk; the clients are
/// separate processes in this fiction and keep their state.
struct PersistWorld {
    dir: PathBuf,
    config: ServerConfig,
    server: Option<GroupKeyServer>,
    clients: BTreeMap<UserId, Client>,
    ghosts: Vec<(UserId, Client)>,
    now_ms: u64,
}

impl PersistWorld {
    fn new(seed: u64) -> Self {
        let dir = scratch_dir("world");
        let config = batched_config(seed);
        let server =
            GroupKeyServer::with_persistence(config.clone(), AccessControl::AllowAll, &dir, pcfg())
                .expect("create persistent server");
        PersistWorld {
            dir,
            config,
            server: Some(server),
            clients: BTreeMap::new(),
            ghosts: Vec::new(),
            now_ms: 0,
        }
    }

    fn server(&mut self) -> &mut GroupKeyServer {
        self.server.as_mut().expect("server is up")
    }

    /// Kill the server process: all in-memory state is gone; only the
    /// snapshot + WAL on disk survive.
    fn crash(&mut self) {
        self.server = None;
    }

    fn recover(&mut self) {
        assert!(self.server.is_none(), "recover implies a prior crash");
        let server = GroupKeyServer::recover(
            self.config.clone(),
            AccessControl::AllowAll,
            &self.dir,
            pcfg(),
        )
        .expect("recovery succeeds");
        self.server = Some(server);
    }

    /// Flush the pending interval and deliver its traffic to the clients.
    fn flush(&mut self) {
        self.now_ms += 1_000;
        let now = self.now_ms;
        let Some(batch) = self.server().flush(now).expect("flush") else { return };
        for u in &batch.departed {
            let ghost = self.clients.remove(u).expect("departed user had a client");
            self.ghosts.push((*u, ghost));
        }
        for g in &batch.grants {
            let mut c = Client::new(g.user, KeyCipher::des_cbc(), VerifyPolicy::Opportunistic);
            c.install_grant(g.individual_key.clone(), g.leaf_label, &g.path_labels);
            self.clients.insert(g.user, c);
        }
        for bytes in &batch.encoded {
            for c in self.clients.values_mut() {
                c.process_batch_rekey(bytes).expect("client applies batch");
            }
        }
    }

    /// No member desyncs: every live client tracks the server's group key.
    fn assert_completeness(&mut self) {
        let (gk_ref, gk) = self.server().tree().group_key();
        for (u, c) in &self.clients {
            let (r, k) = c.group_key().unwrap_or_else(|| panic!("{u} lost the group key"));
            assert_eq!(r, gk_ref, "{u} stale ref");
            assert_eq!(k, gk, "{u} stale key");
        }
    }

    /// No stale key survives: no departed member's keyset contains the
    /// current group key.
    fn assert_no_stale_keys(&mut self) {
        let (_, gk) = self.server().tree().group_key();
        for (u, ghost) in &self.ghosts {
            for (_, k) in ghost.keyset() {
                assert_ne!(k, gk, "{u} retains the live group key after recovery");
            }
        }
    }
}

impl Drop for PersistWorld {
    fn drop(&mut self) {
        self.server = None;
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Decode a churn script into enqueue operations that are always valid
/// (mirrors the scheduler's collapse rules the way the secrecy suite
/// does): returns whether the op was actually enqueued.
struct ChurnState {
    members: std::collections::BTreeSet<u64>,
    pending_join: std::collections::BTreeSet<u64>,
    pending_leave: std::collections::BTreeSet<u64>,
}

impl ChurnState {
    fn new(members: impl IntoIterator<Item = u64>) -> Self {
        ChurnState {
            members: members.into_iter().collect(),
            pending_join: Default::default(),
            pending_leave: Default::default(),
        }
    }

    /// Apply (kind, uid) to `server` if valid; update the mirror.
    fn apply(&mut self, server: &mut GroupKeyServer, kind: u8, uid: u64) {
        let u = UserId(uid);
        if kind == 0 {
            if !self.members.contains(&uid) && !self.pending_join.contains(&uid) {
                server.enqueue_join(u).expect("valid enqueue_join");
                self.pending_join.insert(uid);
            }
        } else {
            let future = self.members.len() + self.pending_join.len() - self.pending_leave.len();
            if self.pending_join.contains(&uid) {
                if future > 1 {
                    server.enqueue_leave(u).expect("collapse join+leave");
                    self.pending_join.remove(&uid);
                }
            } else if self.members.contains(&uid)
                && !self.pending_leave.contains(&uid)
                && future > 1
            {
                server.enqueue_leave(u).expect("valid enqueue_leave");
                self.pending_leave.insert(uid);
            }
        }
    }

    fn settle(&mut self) {
        for j in std::mem::take(&mut self.pending_join) {
            self.members.insert(j);
        }
        for l in std::mem::take(&mut self.pending_leave) {
            self.members.remove(&l);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property. A persisted batched server and an identical
    /// in-memory control run the same churn; the persisted one is killed
    /// at a random point inside an interval and recovered. After recovery
    /// the two servers' key trees carry the same root digest, the rest of
    /// the run produces byte-identical rekey traffic, every live client
    /// stays in sync, and every departed member stays locked out.
    #[test]
    fn crash_at_random_point_mid_interval_recovers_exactly(
        ops in proptest::collection::vec((0u8..2, 0u64..32), 8..40),
        crash_at in 0usize..40,
    ) {
        let seed = 0xC0FF_EE00;
        let mut w = PersistWorld::new(seed);
        let mut control =
            GroupKeyServer::new(batched_config(seed), AccessControl::AllowAll);

        // Seed interval: admit a base population on both servers.
        let mut wm = ChurnState::new([]);
        let mut cm = ChurnState::new([]);
        for i in 0..8u64 {
            wm.apply(w.server(), 0, 1_000 + i);
            cm.apply(&mut control, 0, 1_000 + i);
        }
        w.flush();
        let c = control.flush(w.now_ms).expect("control flush");
        prop_assert!(c.is_some());
        wm.settle();
        cm.settle();

        // Churn in intervals of 4 requests, crashing mid-interval at the
        // chosen index (clamped into range).
        let crash_at = crash_at % ops.len();
        let mut crashed = false;
        for (i, &(kind, uid)) in ops.iter().enumerate() {
            wm.apply(w.server(), kind, uid);
            cm.apply(&mut control, kind, uid);
            if i == crash_at {
                // Kill the server with this interval's requests queued but
                // not flushed, then bring it back from disk.
                w.crash();
                w.recover();
                crashed = true;
                prop_assert_eq!(
                    root_digest(w.server().tree()),
                    root_digest(control.tree()),
                    "recovered tree differs from control"
                );
                prop_assert_eq!(
                    w.server().pending_requests(),
                    control.pending_requests(),
                    "recovered queue depth differs"
                );
            }
            if i % 4 == 3 || i + 1 == ops.len() {
                w.flush();
                let ours = control.flush(w.now_ms).expect("control flush");
                wm.settle();
                cm.settle();
                // The recovered server's tree tracks the never-crashed
                // control through every subsequent interval.
                let _ = ours;
                prop_assert_eq!(
                    root_digest(w.server().tree()),
                    root_digest(control.tree())
                );
                w.assert_completeness();
            }
        }
        prop_assert!(crashed);
        w.assert_no_stale_keys();
        prop_assert_eq!(root_digest(w.server().tree()), root_digest(control.tree()));
    }
}

/// Exhaustive variant of the headline test for one small interval: crash
/// after *every* prefix of the interval's requests and verify the
/// recovered server flushes byte-identically to a control that never
/// crashed.
#[test]
fn crash_at_every_point_of_an_interval_flushes_identically() {
    let seed = 0xBEEF;
    let script: [(u8, u64); 5] = [(0, 50), (1, 2), (0, 51), (1, 5), (0, 52)];
    for crash_after in 0..=script.len() {
        let mut w = PersistWorld::new(seed);
        let mut control = GroupKeyServer::new(batched_config(seed), AccessControl::AllowAll);
        let mut wm = ChurnState::new([]);
        let mut cm = ChurnState::new([]);
        for i in 0..8u64 {
            wm.apply(w.server(), 0, i);
            cm.apply(&mut control, 0, i);
        }
        w.flush();
        control.flush(w.now_ms).expect("control flush");
        wm.settle();
        cm.settle();

        for (i, &(kind, uid)) in script.iter().enumerate() {
            if i == crash_after {
                w.crash();
                w.recover();
            }
            wm.apply(w.server(), kind, uid);
            cm.apply(&mut control, kind, uid);
        }
        if crash_after == script.len() {
            w.crash();
            w.recover();
        }

        let now = w.now_ms + 1_000;
        let ours = w.server().flush(now).expect("flush").expect("non-empty interval");
        let theirs = control.flush(now).expect("flush").expect("non-empty interval");
        assert_eq!(
            ours.encoded, theirs.encoded,
            "crash point {crash_after}: recovered flush is not byte-identical"
        );
        assert_eq!(root_digest(w.server().tree()), root_digest(control.tree()));
    }
}

/// Recovery composes with everything else the server does: ACL denials,
/// immediate-mode operations after a batched history is out of scope, but
/// repeated crash/recover cycles within one run must each resume exactly.
#[test]
fn repeated_crashes_across_snapshot_rotations() {
    let seed = 0x5EED;
    let dir = scratch_dir("rotations");
    let config = ServerConfig { auth: AuthPolicy::None, seed, ..ServerConfig::default() };
    // Aggressive snapshotting so the run crosses several epochs.
    let pc = PersistConfig {
        fsync: FsyncPolicy::EveryRecord,
        snapshot_every_ops: 5,
        ..PersistConfig::default()
    };
    let mut control = GroupKeyServer::new(config.clone(), AccessControl::AllowAll);
    let mut server =
        GroupKeyServer::with_persistence(config.clone(), AccessControl::AllowAll, &dir, pc)
            .expect("create");
    for round in 0..6u64 {
        for i in 0..4 {
            let u = UserId(round * 10 + i);
            let a = server.handle_join(u).expect("join");
            let b = control.handle_join(u).expect("join");
            assert_eq!(a.encoded, b.encoded);
        }
        let victim = UserId(round * 10);
        let a = server.handle_leave(victim).expect("leave");
        let b = control.handle_leave(victim).expect("leave");
        assert_eq!(a.encoded, b.encoded);
        // Crash and recover every round.
        drop(server);
        server = GroupKeyServer::recover(config.clone(), AccessControl::AllowAll, &dir, pc)
            .expect("recover");
        assert_eq!(root_digest(server.tree()), root_digest(control.tree()), "round {round}");
    }
    assert!(
        server.persistence().expect("persistent").epoch() > 0,
        "the run should have rotated at least one snapshot"
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Network-level crash injection: the same property driven end-to-end over
// SimNetwork's crash fault mode.
// ---------------------------------------------------------------------------

/// A networked client: endpoint + decrypting state machine.
struct NetMember {
    user: UserId,
    ep: keygraphs::net::EndpointId,
    client: Option<Client>,
}

fn drain_client(net: &mut SimNetwork, m: &mut NetMember) {
    while let Some(dg) = net.recv(m.ep) {
        if BatchRekeyPacket::sniff(&dg.payload) {
            if let Some(c) = m.client.as_mut() {
                c.process_batch_rekey(&dg.payload).expect("client applies batch packet");
            }
        }
        // Control acks (JoinGranted / LeaveGranted) need no client action
        // here: grants are installed from ServerEvent::Joined, standing in
        // for the paper's authenticated join exchange.
    }
}

/// Kill the server host mid-interval with requests queued, lose its inbox
/// and in-flight traffic, restart the host, rebuild the process from disk
/// with [`GroupKeyServer::recover`] + [`NetServer::resume`], and prove the
/// whole group converges: admitted members track the group key, the
/// departed member is locked out, and a request sent while the host was
/// down is simply lost (retransmitted by its client) — never half-applied.
#[test]
fn network_crash_mid_interval_recovers_and_converges() {
    let seed = 0xD15C;
    let dir = scratch_dir("net");
    let mut net = SimNetwork::new(NetConfig { seed, ..NetConfig::default() });
    let config = batched_config(seed);
    let server =
        GroupKeyServer::with_persistence(config.clone(), AccessControl::AllowAll, &dir, pcfg())
            .expect("create");
    let mut ns = NetServer::new(server, &mut net);
    let server_ep = ns.endpoint();
    let group_addr = ns.group_addr();

    // Interval 1: admit eight members.
    let mut members: Vec<NetMember> = (0..8u64)
        .map(|u| NetMember { user: UserId(u), ep: net.endpoint(), client: None })
        .collect();
    for m in &members {
        let req = ControlMessage::JoinRequest { user: m.user }.encode();
        net.send_unicast(m.ep, server_ep, Bytes::from(req));
    }
    net.run_until_quiet();
    let mut grants = BTreeMap::new();
    for ev in ns.tick(&mut net, 1_000) {
        if let ServerEvent::Joined(g) = ev {
            grants.insert(g.user, g);
        }
    }
    assert_eq!(grants.len(), 8);
    let mut individual_keys = BTreeMap::new();
    for m in &mut members {
        let g = grants.remove(&m.user).expect("granted");
        let mut c = Client::new(m.user, KeyCipher::des_cbc(), VerifyPolicy::Opportunistic);
        c.install_grant(g.individual_key.clone(), g.leaf_label, &g.path_labels);
        individual_keys.insert(m.user, g.individual_key.clone());
        m.client = Some(c);
    }
    net.run_until_quiet();
    for m in &mut members {
        drain_client(&mut net, m);
    }

    // Interval 2 begins: a leave and a join are queued…
    let leaver = 3usize;
    let leaver_user = members[leaver].user;
    let leaver_key = individual_keys.get(&leaver_user).unwrap();
    let auth = leave_authenticator(leaver_user, leaver_key.material());
    let req = ControlMessage::LeaveRequest { user: leaver_user, auth }.encode();
    net.send_unicast(members[leaver].ep, server_ep, Bytes::from(req));
    let mut newcomer = NetMember { user: UserId(100), ep: net.endpoint(), client: None };
    let req = ControlMessage::JoinRequest { user: newcomer.user }.encode();
    net.send_unicast(newcomer.ep, server_ep, Bytes::from(req));
    net.run_until_quiet();
    let events = ns.tick(&mut net, 1_500); // mid-interval: queue, no flush
    assert_eq!(
        events.iter().filter(|e| matches!(e, ServerEvent::Queued(_))).count(),
        2,
        "both requests queued before the crash: {events:?}"
    );
    assert_eq!(ns.inner().group_size(), 8, "not flushed yet");

    // …and the server host dies. The driver's deployment registry keeps
    // the directory; the process state is gone.
    let directory = ns.directory();
    net.crash(server_ep);
    drop(ns);

    // Traffic sent while the host is down is lost, not queued.
    let straggler = NetMember { user: UserId(200), ep: net.endpoint(), client: None };
    let req = ControlMessage::JoinRequest { user: straggler.user }.encode();
    net.send_unicast(straggler.ep, server_ep, Bytes::from(req));
    net.run_until_quiet();

    // Host restarts; the process recovers from snapshot + WAL.
    net.restart(server_ep);
    let recovered = GroupKeyServer::recover(config.clone(), AccessControl::AllowAll, &dir, pcfg())
        .expect("recover");
    assert_eq!(recovered.group_size(), 8);
    assert_eq!(recovered.pending_requests(), 2, "queued interval survived the crash");
    let mut ns = NetServer::resume(recovered, &mut net, server_ep, group_addr, directory);

    // The interval deadline passes: the recovered server flushes the queue
    // it inherited from the WAL.
    let events = ns.tick(&mut net, 2_100);
    assert!(
        events.iter().any(|e| matches!(e, ServerEvent::Flushed { joined: 1, left: 1, .. })),
        "recovered server flushed the pre-crash interval: {events:?}"
    );
    for ev in events {
        if let ServerEvent::Joined(g) = ev {
            assert_eq!(g.user, newcomer.user);
            let mut c = Client::new(g.user, KeyCipher::des_cbc(), VerifyPolicy::Opportunistic);
            c.install_grant(g.individual_key.clone(), g.leaf_label, &g.path_labels);
            newcomer.client = Some(c);
        }
    }
    net.run_until_quiet();

    // The straggler's request died with the host: it was never seen.
    assert!(!ns.inner().is_member(straggler.user));
    assert_eq!(ns.inner().pending_requests(), 0);

    // Every surviving member converges on the new group key; the departed
    // member is locked out even pooling everything it ever held.
    let ghost = members.remove(leaver);
    for m in &mut members {
        drain_client(&mut net, m);
    }
    drain_client(&mut net, &mut newcomer);
    let (gk_ref, gk) = ns.inner().tree().group_key();
    for m in members.iter().chain(std::iter::once(&newcomer)) {
        let (r, k) = m
            .client
            .as_ref()
            .unwrap()
            .group_key()
            .unwrap_or_else(|| panic!("{} has no group key", m.user));
        assert_eq!(r, gk_ref, "{} desynced (ref)", m.user);
        assert_eq!(k, gk, "{} desynced (key)", m.user);
    }
    for (_, k) in ghost.client.as_ref().unwrap().keyset() {
        assert_ne!(k, gk, "departed member retains the post-recovery group key");
    }

    // The lost straggler simply retries, as any UDP client must.
    let req = ControlMessage::JoinRequest { user: straggler.user }.encode();
    net.send_unicast(straggler.ep, server_ep, Bytes::from(req));
    net.run_until_quiet();
    let events = ns.tick(&mut net, 3_100);
    assert!(
        events.iter().any(|e| matches!(e, ServerEvent::Flushed { joined: 1, .. })),
        "retried join admitted after recovery: {events:?}"
    );
    drop(ns);
    let _ = std::fs::remove_dir_all(&dir);
}
