//! End-to-end integration: server + clients + simulated network, across
//! all three rekeying strategies and all authentication policies.

use keygraphs::client::fleet::ClientFleet;
use keygraphs::client::VerifyPolicy;
use keygraphs::core::ids::UserId;
use keygraphs::core::rekey::{KeyCipher, Strategy};
use keygraphs::net::{NetConfig, SimNetwork};
use keygraphs::server::net::{NetServer, ServerEvent};
use keygraphs::server::{AccessControl, AuthPolicy, GroupKeyServer, ServerConfig};

fn settle(net: &mut SimNetwork, ns: &mut NetServer, fleet: &mut ClientFleet) {
    for _ in 0..12 {
        net.run_until_quiet();
        for ev in ns.poll(net) {
            if let ServerEvent::Joined(g) = ev {
                fleet.apply_grant(g.user, g.individual_key.clone(), g.leaf_label, &g.path_labels);
            }
        }
        net.run_until_quiet();
        let events = fleet.pump(net);
        if events.is_empty() && net.pending_total() == 0 {
            break;
        }
    }
}

fn policy_for(server: &GroupKeyServer) -> VerifyPolicy {
    match server.public_key() {
        Some(pk) => VerifyPolicy::RequireSignature { alg: server.config().digest, key: pk.clone() },
        None => VerifyPolicy::Opportunistic,
    }
}

fn churn_scenario(strategy: Strategy, auth: AuthPolicy) {
    let mut net = SimNetwork::new(NetConfig::default());
    let config = ServerConfig { strategy, auth, ..ServerConfig::default() };
    let server = GroupKeyServer::new(config, AccessControl::AllowAll);
    let verify = policy_for(&server);
    let mut ns = NetServer::new(server, &mut net);
    let mut fleet = ClientFleet::new(KeyCipher::des_cbc(), verify);

    let mut present: Vec<u64> = Vec::new();
    for step in 0..40u64 {
        if step % 4 == 3 && present.len() > 2 {
            let u = present.remove((step as usize * 11) % present.len());
            fleet.send_leave_request(&mut net, ns.endpoint(), UserId(u));
            settle(&mut net, &mut ns, &mut fleet);
            fleet.remove(&mut net, UserId(u));
        } else {
            fleet.send_join_request(&mut net, ns.endpoint(), UserId(step));
            settle(&mut net, &mut ns, &mut fleet);
            present.push(step);
        }
        // Invariant: every client's group key equals the server's.
        let (_, server_gk) = ns.inner().tree().group_key();
        assert_eq!(
            fleet.group_key_consensus().as_ref(),
            Some(&server_gk),
            "{strategy:?}/{auth:?}: divergence at step {step}"
        );
        assert_eq!(ns.inner().group_size(), present.len());
    }
}

#[test]
fn user_oriented_no_auth() {
    churn_scenario(Strategy::UserOriented, AuthPolicy::None);
}

#[test]
fn key_oriented_no_auth() {
    churn_scenario(Strategy::KeyOriented, AuthPolicy::None);
}

#[test]
fn group_oriented_no_auth() {
    churn_scenario(Strategy::GroupOriented, AuthPolicy::None);
}

#[test]
fn user_oriented_digest() {
    churn_scenario(Strategy::UserOriented, AuthPolicy::Digest);
}

#[test]
fn key_oriented_batch_signed() {
    churn_scenario(Strategy::KeyOriented, AuthPolicy::SignBatch);
}

#[test]
fn group_oriented_batch_signed() {
    churn_scenario(Strategy::GroupOriented, AuthPolicy::SignBatch);
}

#[test]
fn user_oriented_sign_each() {
    churn_scenario(Strategy::UserOriented, AuthPolicy::SignEach);
}

#[test]
fn clients_hold_exactly_their_path_keys() {
    // After churn, every client's key count matches the server tree's
    // height for that member (Table 1: a user holds at most h keys).
    let mut net = SimNetwork::new(NetConfig::default());
    let server = GroupKeyServer::new(ServerConfig::default(), AccessControl::AllowAll);
    let mut ns = NetServer::new(server, &mut net);
    let mut fleet = ClientFleet::new(KeyCipher::des_cbc(), VerifyPolicy::Opportunistic);
    for i in 0..20u64 {
        fleet.send_join_request(&mut net, ns.endpoint(), UserId(i));
        settle(&mut net, &mut ns, &mut fleet);
    }
    for c in fleet.clients() {
        let server_path = ns.inner().tree().keyset(c.user()).unwrap();
        assert_eq!(c.keys_held(), server_path.len(), "user {:?}", c.user());
        // And the key *values* agree, label by label.
        let client_keys: std::collections::BTreeMap<_, _> =
            c.keyset().into_iter().map(|(r, k)| (r.label, (r.version, k))).collect();
        for (r, k) in server_path {
            let (cv, ck) = client_keys.get(&r.label).expect("client holds path label");
            assert_eq!(*cv, r.version);
            assert_eq!(ck, &k);
        }
    }
}

#[test]
fn group_traffic_confidential_across_rekeys() {
    // Encrypt application data under successive group keys; only the
    // members current at encryption time can decrypt each snapshot.
    let mut net = SimNetwork::new(NetConfig::default());
    let server = GroupKeyServer::new(ServerConfig::default(), AccessControl::AllowAll);
    let mut ns = NetServer::new(server, &mut net);
    let mut fleet = ClientFleet::new(KeyCipher::des_cbc(), VerifyPolicy::Opportunistic);
    for i in 0..8u64 {
        fleet.send_join_request(&mut net, ns.endpoint(), UserId(i));
        settle(&mut net, &mut ns, &mut fleet);
    }
    let (_, gk1) = ns.inner().tree().group_key();
    let ct1 = KeyCipher::des_cbc().encrypt(&gk1, &[0u8; 8], b"epoch one");

    fleet.send_leave_request(&mut net, ns.endpoint(), UserId(3));
    settle(&mut net, &mut ns, &mut fleet);
    let departed = fleet.remove(&mut net, UserId(3)).unwrap();

    let (_, gk2) = ns.inner().tree().group_key();
    let ct2 = KeyCipher::des_cbc().encrypt(&gk2, &[0u8; 8], b"epoch two");
    assert_ne!(gk1, gk2);

    // Remaining members read epoch two; the departed member cannot.
    for c in fleet.clients() {
        let (_, k) = c.group_key().unwrap();
        assert_eq!(KeyCipher::des_cbc().decrypt(&k, &[0u8; 8], &ct2).unwrap(), b"epoch two");
    }
    for (_, k) in departed.keyset() {
        if let Ok(pt) = KeyCipher::des_cbc().decrypt(&k, &[0u8; 8], &ct2) {
            assert_ne!(pt, b"epoch two");
        }
    }
    // But the departed member could read epoch one (it was a member then).
    let (_, old_gk) = departed.group_key().unwrap();
    assert_eq!(KeyCipher::des_cbc().decrypt(&old_gk, &[0u8; 8], &ct1).unwrap(), b"epoch one");
}
