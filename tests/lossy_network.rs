//! Failure injection: rekeying over a lossy network, carried by the
//! reliable delivery layer the paper assumes.
//!
//! §3: "A reliable message delivery system, for both unicast and
//! multicast, is assumed." Here we *earn* that assumption: the server's
//! rekey packets cross a network that drops 30–50% of datagrams and
//! duplicates others, the [`ReliableMailbox`] layer retransmits until
//! acked, and every client still converges on the correct keyset.

use bytes::Bytes;
use keygraphs::client::{Client, VerifyPolicy};
use keygraphs::core::ids::UserId;
use keygraphs::core::rekey::KeyCipher;
use keygraphs::core::rekey::Strategy;
use keygraphs::net::reliable::{ReliableMailbox, RTO_US};
use keygraphs::net::{NetConfig, SimNetwork};
use keygraphs::server::{AccessControl, AuthPolicy, GroupKeyServer, ServerConfig};
use std::collections::BTreeMap;

struct ReliableWorld {
    net: SimNetwork,
    server: GroupKeyServer,
    server_mb: ReliableMailbox,
    clients: BTreeMap<UserId, (Client, ReliableMailbox)>,
}

impl ReliableWorld {
    fn new(loss: f64, seed: u64, strategy: Strategy) -> Self {
        let mut net = SimNetwork::new(NetConfig {
            loss_probability: loss,
            duplicate_probability: 0.1,
            seed,
            ..NetConfig::default()
        });
        let server_ep = net.endpoint();
        let config =
            ServerConfig { strategy, auth: AuthPolicy::Digest, seed, ..ServerConfig::default() };
        ReliableWorld {
            net,
            server: GroupKeyServer::new(config, AccessControl::AllowAll),
            server_mb: ReliableMailbox::new(server_ep),
            clients: BTreeMap::new(),
        }
    }

    fn join(&mut self, u: UserId) {
        let op = self.server.handle_join(u).unwrap();
        let grant = op.join_grant.clone().unwrap();
        let ep = self.net.endpoint();
        let mut c = Client::new(u, KeyCipher::des_cbc(), VerifyPolicy::Opportunistic);
        c.install_grant(grant.individual_key, grant.leaf_label, &grant.path_labels);
        self.clients.insert(u, (c, ReliableMailbox::new(ep)));
        self.broadcast(&op.encoded);
    }

    fn leave(&mut self, u: UserId) -> Client {
        let op = self.server.handle_leave(u).unwrap();
        let (ghost, mb) = self.clients.remove(&u).unwrap();
        self.net.close(mb.endpoint());
        self.broadcast(&op.encoded);
        ghost
    }

    /// Reliably send every rekey packet to every current client
    /// (over-delivery is harmless; clients skip foreign bundles).
    fn broadcast(&mut self, encoded: &[Vec<u8>]) {
        let targets: Vec<_> = self.clients.values().map(|(_, mb)| mb.endpoint()).collect();
        if targets.is_empty() {
            return;
        }
        for bytes in encoded {
            self.server_mb.send(&mut self.net, &targets, Bytes::copy_from_slice(bytes));
        }
        self.pump();
    }

    fn pump(&mut self) {
        for _ in 0..200 {
            self.net.advance(RTO_US);
            self.server_mb.poll(&mut self.net);
            for (c, mb) in self.clients.values_mut() {
                mb.poll(&mut self.net);
                while let Some((_, payload)) = mb.recv() {
                    c.process_rekey(&payload).unwrap();
                }
            }
            if self.server_mb.unacked() == 0 && self.net.pending_total() == 0 {
                break;
            }
        }
        assert_eq!(self.server_mb.unacked(), 0, "reliable layer failed to converge");
        assert!(self.server_mb.failed().is_empty());
    }

    fn assert_converged(&self) {
        let (gk_ref, gk) = self.server.tree().group_key();
        for (u, (c, _)) in &self.clients {
            let (r, k) = c.group_key().unwrap_or_else(|| panic!("{u} has no group key"));
            assert_eq!(r, gk_ref, "{u}");
            assert_eq!(k, gk, "{u}");
        }
    }
}

#[test]
fn converges_at_30_percent_loss() {
    let mut w = ReliableWorld::new(0.3, 1, Strategy::GroupOriented);
    for i in 0..12u64 {
        w.join(UserId(i));
        w.assert_converged();
    }
    for i in [3u64, 7, 9] {
        w.leave(UserId(i));
        w.assert_converged();
    }
    assert_eq!(w.server.group_size(), 9);
}

#[test]
fn converges_at_50_percent_loss_key_oriented() {
    let mut w = ReliableWorld::new(0.5, 2, Strategy::KeyOriented);
    for i in 0..8u64 {
        w.join(UserId(i));
    }
    w.assert_converged();
    for i in 0..4u64 {
        w.leave(UserId(i));
        w.assert_converged();
    }
}

#[test]
fn duplicates_do_not_corrupt_state() {
    // 100% duplication: every datagram delivered twice; dedup at the
    // reliable layer keeps key state exactly-once.
    let mut net = SimNetwork::new(NetConfig { duplicate_probability: 1.0, ..NetConfig::default() });
    let server_ep = net.endpoint();
    let client_ep = net.endpoint();
    let mut server_mb = ReliableMailbox::new(server_ep);
    let mut client_mb = ReliableMailbox::new(client_ep);

    let config = ServerConfig::default();
    let mut server = GroupKeyServer::new(config, AccessControl::AllowAll);
    let op = server.handle_join(UserId(1)).unwrap();
    let grant = op.join_grant.clone().unwrap();
    let mut client = Client::new(UserId(1), KeyCipher::des_cbc(), VerifyPolicy::Opportunistic);
    client.install_grant(grant.individual_key, grant.leaf_label, &grant.path_labels);

    for bytes in &op.encoded {
        server_mb.send(&mut net, &[client_ep], Bytes::copy_from_slice(bytes));
    }
    let mut processed = 0;
    for _ in 0..20 {
        net.advance(RTO_US);
        server_mb.poll(&mut net);
        client_mb.poll(&mut net);
        while let Some((_, payload)) = client_mb.recv() {
            client.process_rekey(&payload).unwrap();
            processed += 1;
        }
        if server_mb.unacked() == 0 {
            break;
        }
    }
    assert_eq!(processed, op.encoded.len(), "each packet processed exactly once");
    let (_, gk) = server.tree().group_key();
    assert_eq!(client.group_key().unwrap().1, gk);
}

/// Satellite check: the fault counters and timeline events the
/// simulated network reports through `kg-obs` must reconcile with the
/// network's own per-endpoint traffic accounting, and the timeline must
/// be stamped in deterministic virtual time.
#[test]
fn obs_counters_reconcile_with_network_accounting() {
    use keygraphs::obs::{ManualClock, Obs, ObsConfig};

    let clock = ManualClock::new();
    let obs = Obs::new(ObsConfig::manual(clock.clone()));
    let mut net = SimNetwork::new(NetConfig {
        loss_probability: 0.4,
        duplicate_probability: 0.2,
        seed: 11,
        ..NetConfig::default()
    });
    net.attach_obs(obs.clone());
    net.drive_obs_clock(clock.clone());
    let a = net.endpoint();
    let b = net.endpoint();
    let mut mb_a = ReliableMailbox::new(a);
    mb_a.attach_obs(obs.clone());
    let mut mb_b = ReliableMailbox::new(b);

    for i in 0..40u8 {
        mb_a.send(&mut net, &[b], Bytes::copy_from_slice(&[i]));
    }
    for _ in 0..200 {
        net.advance(RTO_US);
        mb_a.poll(&mut net);
        mb_b.poll(&mut net);
        while mb_b.recv().is_some() {}
        if mb_a.unacked() == 0 && net.pending_total() == 0 {
            break;
        }
    }
    assert_eq!(mb_a.unacked(), 0, "reliable layer failed to converge");

    // Every datagram the endpoints saw arrive is on the delivered
    // counter; nothing else is.
    let delivered = obs.counter("kg_net_delivered_total").get();
    assert_eq!(
        delivered,
        net.stats(a).datagrams_received + net.stats(b).datagrams_received,
        "delivered counter vs per-endpoint traffic stats"
    );

    // At 40% loss the fault counters must have fired, and each fault
    // counter increment must have a matching timeline event (cumulative
    // kind counts survive ring eviction, so this holds at any capacity).
    let dropped = obs.counter_with("kg_net_dropped_total", "mode", "loss").get()
        + obs.counter_with("kg_net_dropped_total", "mode", "down").get()
        + obs.counter_with("kg_net_dropped_total", "mode", "closed").get();
    let duplicated = obs.counter("kg_net_duplicated_total").get();
    let retransmits = obs.counter("kg_net_retransmits_total").get();
    assert!(dropped > 0, "40% loss produced no drops?");
    assert!(duplicated > 0, "20% duplication produced no duplicates?");
    assert!(retransmits > 0, "drops without retransmits?");

    let kinds = obs.event_kind_counts();
    assert_eq!(kinds.get("packet_dropped").copied().unwrap_or(0), dropped);
    assert_eq!(kinds.get("packet_duplicated").copied().unwrap_or(0), duplicated);
    assert_eq!(kinds.get("retransmit").copied().unwrap_or(0), retransmits);

    // Crash/restart fault injection lands on the timeline too.
    net.crash(b);
    net.restart(b);
    let kinds = obs.event_kind_counts();
    assert_eq!(kinds.get("crash").copied().unwrap_or(0), 1);
    assert_eq!(kinds.get("restart").copied().unwrap_or(0), 1);

    // Timeline timestamps are virtual-network microseconds, not wall
    // time: the last event cannot postdate the network clock, and the
    // obs clock tracks it exactly.
    assert_eq!(obs.now_us(), net.now_us());
    let tl = obs.timeline();
    assert!(!tl.is_empty());
    assert!(tl.last().unwrap().at_us <= net.now_us());
    assert!(tl.windows(2).all(|w| w[0].at_us <= w[1].at_us), "timeline causally ordered");
}

#[test]
fn ghost_still_locked_out_despite_loss() {
    let mut w = ReliableWorld::new(0.4, 3, Strategy::GroupOriented);
    for i in 0..10u64 {
        w.join(UserId(i));
    }
    let ghost = w.leave(UserId(4));
    w.assert_converged();
    let (_, gk) = w.server.tree().group_key();
    for (_, k) in ghost.keyset() {
        assert_ne!(k, gk);
    }
}
