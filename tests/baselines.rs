//! Baseline structures through the umbrella API: the star's Θ(n) wall,
//! the complete graph's exponential wall, and the Iolus trade-off —
//! the design space the key tree sits in the middle of.

use keygraphs::core::complete::CompleteGroup;
use keygraphs::core::ids::UserId;
use keygraphs::core::rekey::{KeyCipher, Recipients, Rekeyer, Strategy};
use keygraphs::core::star::StarGroup;
use keygraphs::core::tree::KeyTree;
use keygraphs::crypto::drbg::HmacDrbg;
use keygraphs::crypto::KeySource;
use keygraphs::iolus::IolusSystem;

#[test]
fn design_space_orderings_hold() {
    // For the same membership change at n = 128, the three structures'
    // leave costs order: tree << star; complete = 0 but with 2^n keys.
    let n = 128u64;
    let mut src = HmacDrbg::from_seed(1);
    let mut ivs = HmacDrbg::from_seed(2);

    // Star.
    let mut star = StarGroup::new(8, KeyCipher::des_cbc(), &mut src);
    for i in 0..n {
        let ik = src.generate_key(8);
        star.join(UserId(i), ik, &mut src, &mut ivs).unwrap();
    }
    let star_cost = star.leave(UserId(0), &mut src, &mut ivs).unwrap().ops.key_encryptions;

    // Tree.
    let mut tree = KeyTree::new(4, 8, &mut src);
    for i in 0..n {
        let ik = src.generate_key(8);
        tree.join(UserId(i), ik, &mut src).unwrap();
    }
    let ev = tree.leave(UserId(0), &mut src).unwrap();
    let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
    let tree_cost = rk.leave(&ev, Strategy::GroupOriented).ops.key_encryptions;

    assert!(tree_cost < star_cost / 4, "tree {tree_cost} vs star {star_cost}");

    // Complete (small n only — that's the point).
    let mut complete = CompleteGroup::new(8);
    for i in 0..10u64 {
        complete.join(UserId(i), &mut src).unwrap();
    }
    assert_eq!(complete.key_count(), (1 << 10) - 1);
    let ops = complete.leave(UserId(0)).unwrap();
    assert_eq!(ops.keys_generated, 0, "complete-graph leaves cost nothing…");
    assert_eq!(complete.key_count(), (1 << 9) - 1, "…but the key count is exponential");
}

#[test]
fn iolus_and_tree_secure_the_same_workload() {
    // Same churn against both systems; both must keep evicted members out,
    // by their respective mechanisms.
    let mut src = HmacDrbg::from_seed(3);
    let mut ivs = HmacDrbg::from_seed(4);

    let mut tree = KeyTree::new(4, 8, &mut src);
    let mut iolus = IolusSystem::new(2, 4, 16, KeyCipher::des_cbc(), &mut src);
    for i in 0..32u64 {
        let ik = src.generate_key(8);
        tree.join(UserId(i), ik, &mut src).unwrap();
        iolus.join(UserId(i), &mut src).unwrap();
    }

    // Evict user 5 from both.
    let victim = UserId(5);
    let victim_tree_keys: Vec<_> =
        tree.keyset(victim).unwrap().into_iter().map(|(_, k)| k).collect();
    let victim_home = iolus.home_agent(victim).unwrap();
    let victim_subgroup_key = iolus.subgroup_key(victim_home);

    let ev = tree.leave(victim, &mut src).unwrap();
    let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
    let _ = rk.leave(&ev, Strategy::GroupOriented);
    iolus.leave(victim, &mut src).unwrap();

    // Tree side: the new group key is not derivable from the victim's keys.
    let (_, gk) = tree.group_key();
    for k in &victim_tree_keys {
        assert_ne!(*k, gk);
    }

    // Iolus side: a fresh message is unreadable with the stale subgroup key.
    let msg = iolus.send_to_group(UserId(1), b"post-eviction", &mut src).unwrap();
    let leak = iolus.receive_with_stale_key(victim_home, &victim_subgroup_key, &msg);
    assert_ne!(leak.as_deref(), Some(b"post-eviction".as_slice()));
    // And current members still read it.
    assert_eq!(iolus.receive(UserId(1), &msg).as_deref(), Some(b"post-eviction".as_slice()));
}

#[test]
fn star_recipients_are_exactly_the_survivors() {
    let mut src = HmacDrbg::from_seed(5);
    let mut ivs = HmacDrbg::from_seed(6);
    let mut star = StarGroup::new(8, KeyCipher::des_cbc(), &mut src);
    for i in 0..10u64 {
        let ik = src.generate_key(8);
        star.join(UserId(i), ik, &mut src, &mut ivs).unwrap();
    }
    let out = star.leave(UserId(4), &mut src, &mut ivs).unwrap();
    let mut recipients: Vec<UserId> = out
        .messages
        .iter()
        .map(|m| match m.recipients {
            Recipients::User(u) => u,
            ref other => panic!("star leave must unicast, got {other:?}"),
        })
        .collect();
    recipients.sort();
    let expected: Vec<UserId> = (0..10).filter(|&i| i != 4).map(UserId).collect();
    assert_eq!(recipients, expected);
}

#[test]
fn tree_scales_where_complete_cannot() {
    // 2^n keys make the complete graph unusable beyond toy sizes; the tree
    // handles the same membership with ~n·d/(d−1) keys.
    let mut src = HmacDrbg::from_seed(7);
    let n = 512u64;
    let mut tree = KeyTree::new(4, 8, &mut src);
    for i in 0..n {
        let ik = src.generate_key(8);
        tree.join(UserId(i), ik, &mut src).unwrap();
    }
    let tree_keys = tree.key_count() as u64;
    assert!(tree_keys < 2 * n, "tree: {tree_keys} keys for {n} users");
    // The complete graph for the same n would need 2^512 − 1 keys; its
    // implementation refuses anything beyond MAX_USERS.
    const { assert!(keygraphs::core::complete::MAX_USERS < 16) };
}
