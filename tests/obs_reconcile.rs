//! End-to-end observability reconciliation: after a random sequence of
//! enqueued joins, leaves, and interval flushes — interrupted by a
//! crash — every independent account of "what happened" must agree:
//! the test's own ledger, the metrics registry, the cumulative event
//! timeline, the `ServerStats` record stream, and the write-ahead log
//! on disk (read back by replaying it).
//!
//! The key invariant under test is that *replay is unobserved*: a
//! recovered server reconstructs its state by re-running the logged
//! requests, and those reconstructions must not inflate the counters
//! that reconcile against the WAL.

use keygraphs::core::ids::UserId;
use keygraphs::obs::{Obs, ObsConfig};
use keygraphs::persist::{FsyncPolicy, PersistConfig};
use keygraphs::server::{AccessControl, AuthPolicy, GroupKeyServer, RekeyPolicy, ServerConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("kg-obs-reconcile-{}-{n}", std::process::id()))
}

fn batched_config(seed: u64) -> ServerConfig {
    ServerConfig {
        auth: AuthPolicy::None,
        seed,
        rekey: RekeyPolicy::Batched { interval_ms: u64::MAX / 4, max_pending: usize::MAX },
        ..ServerConfig::default()
    }
}

/// Snapshots off so the full history stays in one log and the replay
/// count equals the append count; fsync per record so a crash (drop)
/// loses nothing.
fn pcfg() -> PersistConfig {
    PersistConfig {
        fsync: FsyncPolicy::EveryRecord,
        snapshot_every_ops: u64::MAX,
        snapshot_max_bytes: u64::MAX,
    }
}

/// What the test itself observed — the account everything else must
/// match.
#[derive(Default)]
struct Ledger {
    joins_ok: u64,
    leaves_ok: u64,
    flush_calls: u64,
    nonempty_flushes: u64,
}

impl Ledger {
    fn wal_appends(&self) -> u64 {
        self.joins_ok + self.leaves_ok + self.flush_calls
    }
}

/// One scripted op: 0 = enqueue join, 1 = enqueue leave, 2 = flush.
fn apply(server: &mut GroupKeyServer, ledger: &mut Ledger, now_ms: &mut u64, op: (u8, u64)) {
    match op.0 {
        0 => {
            if server.enqueue_join(UserId(op.1)).is_ok() {
                ledger.joins_ok += 1;
            }
        }
        1 => {
            if server.enqueue_leave(UserId(op.1)).is_ok() {
                ledger.leaves_ok += 1;
            }
        }
        _ => {
            *now_ms += 1;
            ledger.flush_calls += 1;
            if server.flush(*now_ms).expect("flush").is_some() {
                ledger.nonempty_flushes += 1;
            }
        }
    }
}

fn check_life(obs: &Obs, ledger: &Ledger, stats_records: u64, label: &str) {
    let kinds = obs.event_kind_counts();
    let count = |k: &str| kinds.get(k).copied().unwrap_or(0);
    assert_eq!(count("enqueue_join"), ledger.joins_ok, "{label}: enqueue_join events");
    // A leave that cancels a still-queued join surfaces as a collapse
    // instead of an enqueue; together they account for every accepted
    // leave request.
    assert_eq!(
        count("enqueue_leave") + count("collapsed_join"),
        ledger.leaves_ok,
        "{label}: leave-side events"
    );
    assert_eq!(count("wal_append"), ledger.wal_appends(), "{label}: WalAppend events");
    assert_eq!(count("flush"), ledger.nonempty_flushes, "{label}: Flush events");
    assert_eq!(
        obs.counter_with("kg_requests_total", "kind", "batch").get(),
        ledger.nonempty_flushes,
        "{label}: batch request counter"
    );
    assert_eq!(stats_records, ledger.nonempty_flushes, "{label}: ServerStats records");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random join/leave/flush script, a crash at a random point, a
    /// second observed life, and a final replay-only recovery. All five
    /// accounts must reconcile at every stage.
    #[test]
    fn every_account_agrees(
        seed in 0u64..1_000,
        script in proptest::collection::vec((0u8..3, 0u64..16), 8..48),
        crash_at in 4usize..8,
    ) {
        let dir = scratch_dir();
        let config = batched_config(seed);
        let crash_at = crash_at.min(script.len());
        let mut now_ms = 0u64;

        // Life 1: observed from birth, crashes mid-script.
        let obs1 = Obs::new(ObsConfig::default());
        let mut server = GroupKeyServer::with_persistence(
            config.clone(), AccessControl::AllowAll, &dir, pcfg(),
        ).expect("create persistent server");
        server.attach_obs(obs1.clone());
        let mut ledger1 = Ledger::default();
        for &op in &script[..crash_at] {
            apply(&mut server, &mut ledger1, &mut now_ms, op);
        }
        let stats1 = server.stats().records_pushed();
        drop(server); // crash

        check_life(&obs1, &ledger1, stats1, "life 1");

        // Life 2: recovered under a fresh handle. Replay must restore
        // the stats stream without touching the new handle's request
        // counters or timeline (beyond the single Recovered event).
        let obs2 = Obs::new(ObsConfig::default());
        let mut server = GroupKeyServer::recover_observed(
            config.clone(), AccessControl::AllowAll, &dir, pcfg(), obs2.clone(),
        ).expect("recover");
        prop_assert_eq!(
            obs2.counter("kg_replayed_records_total").get(),
            ledger1.wal_appends(),
            "records replayed vs life-1 WAL appends"
        );
        prop_assert_eq!(
            obs2.event_kind_counts().get("recovered").copied().unwrap_or(0), 1
        );
        prop_assert_eq!(
            server.stats().records_pushed(), stats1,
            "replay reconstructs the same stats stream"
        );
        prop_assert_eq!(
            obs2.counter_with("kg_requests_total", "kind", "batch").get(), 0,
            "replayed flushes must not count as new requests"
        );

        // Run the rest of the script observed, ending with a flush so
        // nothing is left queued.
        let mut ledger2 = Ledger::default();
        for &op in &script[crash_at..] {
            apply(&mut server, &mut ledger2, &mut now_ms, op);
        }
        apply(&mut server, &mut ledger2, &mut now_ms, (2, 0));
        let stats2 = server.stats().records_pushed() - stats1;
        drop(server); // clean shutdown (fsync-per-record: nothing lost)

        check_life(&obs2, &ledger2, stats2, "life 2");

        // Final account: the log on disk holds both lives' appends.
        let obs3 = Obs::new(ObsConfig::default());
        let server = GroupKeyServer::recover_observed(
            config, AccessControl::AllowAll, &dir, pcfg(), obs3.clone(),
        ).expect("second recovery");
        prop_assert_eq!(
            obs3.counter("kg_replayed_records_total").get(),
            ledger1.wal_appends() + ledger2.wal_appends(),
            "the WAL is the union of both observed lives"
        );
        drop(server);
        std::fs::remove_dir_all(&dir).ok();
    }
}
