//! Measured costs vs the paper's analytical model (Tables 1–3), across a
//! grid of group sizes and degrees.

use keygraphs::core::cost::{self, GraphClass};
use keygraphs::core::ids::UserId;
use keygraphs::core::rekey::{KeyCipher, Rekeyer, Strategy};
use keygraphs::core::star::StarGroup;
use keygraphs::core::tree::KeyTree;
use keygraphs::crypto::drbg::HmacDrbg;
use keygraphs::crypto::KeySource;

fn full_tree(n: u64, d: usize) -> (KeyTree, HmacDrbg) {
    let mut src = HmacDrbg::from_seed(42);
    let mut tree = KeyTree::new(d, 8, &mut src);
    for i in 0..n {
        let ik = src.generate_key(8);
        tree.join(UserId(i), ik, &mut src).unwrap();
    }
    (tree, src)
}

#[test]
fn table1_key_counts_over_grid() {
    for d in [2usize, 4, 8] {
        for exp in 1..=3u32 {
            let n = (d as u64).pow(exp);
            let (tree, _) = full_tree(n, d);
            // Exactly full & balanced: geometric sum of k-nodes.
            let expected = cost::server_total_keys(GraphClass::Tree, n, d as u64);
            assert_eq!(
                tree.key_count() as u64,
                expected,
                "n={n}, d={d}: key count vs (d^h - 1)/(d - 1)"
            );
            assert_eq!(tree.height() as u64, cost::tree_height(n, d as u64));
        }
    }
}

#[test]
fn table2_server_join_cost_exact_on_full_trees() {
    // On a perfectly full, balanced tree, measured encryptions equal the
    // formulas exactly.
    for d in [2usize, 3, 4] {
        let n = (d as u64).pow(3);
        let (mut tree, mut src) = full_tree(n, d);
        let h = cost::tree_height(n, d as u64); // tree is full: h = 4
                                                // Join: the tree is full, so the join splits a leaf; height grows.
                                                // Use a tree with one slot free instead: remove one user first.
        tree.leave(UserId(0), &mut src).unwrap();
        let ik = src.generate_key(8);
        let ev = tree.join(UserId(999), ik, &mut src).unwrap();
        let mut ivs = HmacDrbg::from_seed(1);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let out = rk.join(&ev, Strategy::KeyOriented);
        assert_eq!(out.ops.key_encryptions, 2 * (h - 1), "d={d}: join cost 2(h-1)");
    }
}

#[test]
fn table2_server_leave_cost_exact_on_full_trees() {
    for d in [2usize, 3, 4] {
        let n = (d as u64).pow(3);
        let (mut tree, mut src) = full_tree(n, d);
        let h = cost::tree_height(n, d as u64);
        let ev = tree.leave(UserId(n - 1), &mut src).unwrap();
        let mut ivs = HmacDrbg::from_seed(2);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let out = rk.leave(&ev, Strategy::GroupOriented);
        // Leaving point drops to d−1 children and contracts only at d=2;
        // at d≥3 cost is exactly d(h−1) − 1 + ... : the leaving level has
        // d−1 survivors, others d−1 siblings + 1 path child = d.
        // Fig 8/9 cost: d(h−1) assumes the leaving level also has d
        // children pre-departure → d−1 after. Measured:
        let expected = if d == 2 {
            // Contraction: the unary leaving point is spliced away, so the
            // path has h−2 nodes and every level encrypts for d children.
            (d as u64) * (h - 2)
        } else {
            // Leaving level keeps d−1 survivors; each higher level has d−1
            // sibling children plus the path child's fresh key.
            (d as u64 - 1) + (d as u64) * (h - 2)
        };
        assert_eq!(out.ops.key_encryptions, expected, "d={d}");
        // The paper's d(h−1) is the upper bound; we're within d of it.
        assert!(out.ops.key_encryptions <= d as u64 * (h - 1));
        assert!(out.ops.key_encryptions + d as u64 > d as u64 * (h - 1) - d as u64);
    }
}

#[test]
fn star_costs_scale_linearly() {
    let mut src = HmacDrbg::from_seed(3);
    let mut ivs = HmacDrbg::from_seed(4);
    for n in [8u64, 32, 128] {
        let mut star = StarGroup::new(8, KeyCipher::des_cbc(), &mut src);
        for i in 0..n {
            let ik = src.generate_key(8);
            star.join(UserId(i), ik, &mut src, &mut ivs).unwrap();
        }
        let out = star.leave(UserId(0), &mut src, &mut ivs).unwrap();
        assert_eq!(out.ops.key_encryptions, n - 1, "star leave is Θ(n)");
    }
}

#[test]
fn tree_beats_star_beyond_small_n() {
    // The paper's motivating claim, measured: for n ≥ 32 the tree's leave
    // cost d(h−1) is far below the star's n−1.
    for n in [32u64, 256, 1024] {
        let (mut tree, mut src) = full_tree(n, 4);
        let ev = tree.leave(UserId(n / 2), &mut src).unwrap();
        let mut ivs = HmacDrbg::from_seed(5);
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        let tree_cost = rk.leave(&ev, Strategy::GroupOriented).ops.key_encryptions;
        let star_cost = n - 1;
        assert!(tree_cost * 2 < star_cost, "n={n}: tree {tree_cost} vs star {star_cost}");
        if n >= 1024 {
            // At scale the gap is an order of magnitude and more.
            assert!(tree_cost * 10 < star_cost);
        }
    }
}

#[test]
fn average_cost_tracks_table3_under_churn() {
    // Run mixed churn and verify the running average sits near
    // (d+2)(h−1)/2 for the tree.
    let d = 4usize;
    let n = 256u64;
    let (mut tree, mut src) = full_tree(n, d);
    let mut ivs = HmacDrbg::from_seed(6);
    let mut total_enc = 0u64;
    let ops = 100u64;
    let mut next = n;
    for i in 0..ops {
        let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
        if i % 2 == 0 {
            let ik = src.generate_key(8);
            let ev = tree.join(UserId(next), ik, &mut src).unwrap();
            next += 1;
            total_enc += rk.join(&ev, Strategy::GroupOriented).ops.key_encryptions;
        } else {
            let victim = tree.members().next().unwrap();
            let ev = tree.leave(victim, &mut src).unwrap();
            total_enc += rk.leave(&ev, Strategy::GroupOriented).ops.key_encryptions;
        }
    }
    let measured = total_enc as f64 / ops as f64;
    let formula = cost::avg_cost_server(GraphClass::Tree, n, d as u64);
    let ratio = measured / formula;
    assert!((0.5..=1.5).contains(&ratio), "measured {measured:.2} vs formula {formula:.2}");
}

#[test]
fn complete_graph_bracket() {
    use keygraphs::core::complete::CompleteGroup;
    let mut src = HmacDrbg::from_seed(7);
    let mut g = CompleteGroup::new(8);
    for i in 0..6u64 {
        g.join(UserId(i), &mut src).unwrap();
    }
    // Table 1 and Table 2 complete-column behaviour.
    assert_eq!(g.key_count() as u64, cost::server_total_keys(GraphClass::Complete, 6, 0));
    assert_eq!(g.keys_held_by(UserId(3)) as u64, cost::keys_per_user(GraphClass::Complete, 6, 0));
    let ops = g.leave(UserId(0)).unwrap();
    assert_eq!(ops.keys_generated, 0, "complete-graph leaves are free");
}

#[test]
fn message_count_formulas_hold_on_full_trees() {
    let d = 4usize;
    let n = (d as u64).pow(3);
    let (mut tree, mut src) = full_tree(n, d);
    let h = cost::tree_height(n, d as u64);
    // Leave from a full tree.
    let ev = tree.leave(UserId(n - 1), &mut src).unwrap();
    let mut ivs = HmacDrbg::from_seed(8);
    let mut rk = Rekeyer::new(KeyCipher::des_cbc(), &mut ivs);
    let user_msgs = rk.leave(&ev, Strategy::UserOriented).messages.len() as u64;
    let key_msgs = rk.leave(&ev, Strategy::KeyOriented).messages.len() as u64;
    let group_msgs = rk.leave(&ev, Strategy::GroupOriented).messages.len() as u64;
    // (d−1)(h−1) with the leaving level one short: exact count is
    // (d−1)(h−2) + (d−1) = (d−1)(h−1).
    assert_eq!(user_msgs, (d as u64 - 1) * (h - 1));
    assert_eq!(key_msgs, user_msgs);
    assert_eq!(group_msgs, 1);
}
