//! The paper-style specification file drives observable server behaviour.
//!
//! §5: "The server is initialized from a specification file which
//! determines the initial group size, the rekeying strategy, the key tree
//! degree, the encryption algorithm, the message digest algorithm, the
//! digital signature algorithm, etc."

use keygraphs::core::ids::UserId;
use keygraphs::server::{AccessControl, GroupKeyServer, ServerConfig};
use keygraphs::wire::{AuthTag, OpKind, RekeyPacket};

fn server_from(spec: &str) -> GroupKeyServer {
    let config = ServerConfig::from_spec(spec).expect("valid spec");
    GroupKeyServer::new(config, AccessControl::AllowAll)
}

#[test]
fn strategy_key_in_spec_changes_message_pattern() {
    let mut group = server_from("strategy = group");
    let mut user = server_from("strategy = user");
    for i in 0..27u64 {
        group.handle_join(UserId(i)).unwrap();
        user.handle_join(UserId(i)).unwrap();
    }
    let g = group.handle_leave(UserId(13)).unwrap();
    let u = user.handle_leave(UserId(13)).unwrap();
    assert_eq!(g.packets.len(), 1, "group-oriented: one multicast per leave");
    assert!(u.packets.len() > 1, "user-oriented: one message per class");
}

#[test]
fn degree_in_spec_changes_tree_shape() {
    let mut d2 = server_from("degree = 2");
    let mut d8 = server_from("degree = 8");
    for i in 0..64u64 {
        d2.handle_join(UserId(i)).unwrap();
        d8.handle_join(UserId(i)).unwrap();
    }
    assert!(d2.tree().height() > d8.tree().height());
    assert_eq!(d2.tree().degree(), 2);
    assert_eq!(d8.tree().degree(), 8);
}

#[test]
fn cipher_in_spec_changes_key_and_ciphertext_sizes() {
    let mut des = server_from("cipher = des-cbc");
    let mut tdes = server_from("cipher = 3des-cbc");
    for i in 0..4u64 {
        des.handle_join(UserId(i)).unwrap();
        tdes.handle_join(UserId(i)).unwrap();
    }
    let d = des.handle_join(UserId(9)).unwrap();
    let t = tdes.handle_join(UserId(9)).unwrap();
    assert_eq!(d.join_grant.as_ref().unwrap().individual_key.len(), 8);
    assert_eq!(t.join_grant.as_ref().unwrap().individual_key.len(), 24);
    // 3DES bundles carry 24-byte keys → larger ciphertexts.
    let d_bytes: usize = d.encoded.iter().map(|e| e.len()).sum();
    let t_bytes: usize = t.encoded.iter().map(|e| e.len()).sum();
    assert!(t_bytes > d_bytes);
}

#[test]
fn digest_in_spec_changes_tag_length() {
    let mut md5 = server_from("auth = digest\ndigest = md5");
    let mut sha = server_from("auth = digest\ndigest = sha256");
    md5.handle_join(UserId(1)).unwrap();
    sha.handle_join(UserId(1)).unwrap();
    let m = md5.handle_join(UserId(2)).unwrap();
    let s = sha.handle_join(UserId(2)).unwrap();
    let (mp, _) = RekeyPacket::decode(&m.encoded[0]).unwrap();
    let (sp, _) = RekeyPacket::decode(&s.encoded[0]).unwrap();
    match (&mp.auth, &sp.auth) {
        (AuthTag::Digest(a), AuthTag::Digest(b)) => {
            assert_eq!(a.len(), 16);
            assert_eq!(b.len(), 32);
        }
        other => panic!("expected digests, got {other:?}"),
    }
}

#[test]
fn signature_spec_produces_signed_packets() {
    let mut s = server_from("auth = sign-batch\nrsa-bits = 512\nstrategy = key");
    for i in 0..9u64 {
        s.handle_join(UserId(i)).unwrap();
    }
    let op = s.handle_leave(UserId(4)).unwrap();
    assert!(op.packets.len() > 1);
    for p in &op.packets {
        assert!(matches!(p.auth, AuthTag::MerkleSigned { .. }));
    }
    // Signature length matches the spec'd modulus.
    if let AuthTag::MerkleSigned { root_signature, .. } = &op.packets[0].auth {
        assert_eq!(root_signature.len(), 64);
    }
}

#[test]
fn seed_in_spec_makes_runs_reproducible() {
    let run = |spec: &str| {
        let mut s = server_from(spec);
        for i in 0..10u64 {
            s.handle_join(UserId(i)).unwrap();
        }
        s.handle_leave(UserId(5)).unwrap().encoded
    };
    assert_eq!(run("seed = 77"), run("seed = 77"));
    assert_ne!(run("seed = 77"), run("seed = 78"));
}

#[test]
fn op_kind_on_the_wire_matches_request() {
    let mut s = server_from("strategy = group");
    s.handle_join(UserId(1)).unwrap();
    let j = s.handle_join(UserId(2)).unwrap();
    let l = s.handle_leave(UserId(2)).unwrap();
    let (jp, _) = RekeyPacket::decode(&j.encoded[0]).unwrap();
    let (lp, _) = RekeyPacket::decode(&l.encoded[0]).unwrap();
    assert_eq!(jp.op, OpKind::Join);
    assert_eq!(lp.op, OpKind::Leave);
    assert!(lp.seq > jp.seq, "sequence numbers increase");
}
