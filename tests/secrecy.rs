//! Security-invariant integration tests: forward secrecy, backward
//! secrecy, and completeness of rekeying, across strategies and random
//! churn (property-based).
//!
//! These drive the server and real decrypting clients directly (no
//! network) so the invariants are checked against actual ciphertext, not
//! bookkeeping.

use keygraphs::client::{Client, VerifyPolicy};
use keygraphs::core::ids::UserId;
use keygraphs::core::rekey::{KeyCipher, Strategy};
use keygraphs::server::{AccessControl, AuthPolicy, GroupKeyServer, RekeyPolicy, ServerConfig};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

struct World {
    server: GroupKeyServer,
    clients: BTreeMap<UserId, Client>,
    /// Full rekey traffic log (what a wiretapper records).
    traffic: Vec<Vec<u8>>,
    /// Keysets of departed members at the moment they left.
    ghosts: Vec<(UserId, Client)>,
}

impl World {
    fn new(strategy: Strategy, seed: u64) -> World {
        let config =
            ServerConfig { strategy, auth: AuthPolicy::None, seed, ..ServerConfig::default() };
        World {
            server: GroupKeyServer::new(config, AccessControl::AllowAll),
            clients: BTreeMap::new(),
            traffic: Vec::new(),
            ghosts: Vec::new(),
        }
    }

    fn join(&mut self, u: UserId) {
        let op = self.server.handle_join(u).unwrap();
        let grant = op.join_grant.clone().unwrap();
        let mut c = Client::new(u, KeyCipher::des_cbc(), VerifyPolicy::Opportunistic);
        c.install_grant(grant.individual_key, grant.leaf_label, &grant.path_labels);
        self.clients.insert(u, c);
        self.deliver(&op.encoded);
    }

    fn leave(&mut self, u: UserId) {
        let op = self.server.handle_leave(u).unwrap();
        let ghost = self.clients.remove(&u).unwrap();
        self.ghosts.push((u, ghost));
        self.deliver(&op.encoded);
    }

    fn deliver(&mut self, encoded: &[Vec<u8>]) {
        for bytes in encoded {
            self.traffic.push(bytes.clone());
            for c in self.clients.values_mut() {
                // Magic-dispatched: shipped strategies send RekeyPackets,
                // the derived strategy DerivedRekeyPackets.
                c.process_packet(bytes).unwrap();
            }
        }
    }

    /// Completeness: every member tracks the server's group key.
    fn assert_completeness(&self) {
        let (gk_ref, gk) = self.server.tree().group_key();
        for (u, c) in &self.clients {
            let (r, k) = c.group_key().unwrap_or_else(|| panic!("{u} lost the group key"));
            assert_eq!(r, gk_ref, "{u} stale ref");
            assert_eq!(k, gk, "{u} stale key");
        }
    }

    /// Forward secrecy: no ghost's final keyset contains the current group
    /// key, and replaying all recorded traffic into a ghost installs
    /// nothing it didn't already have.
    fn assert_forward_secrecy(&self) {
        let (_, gk) = self.server.tree().group_key();
        for (u, ghost) in &self.ghosts {
            for (_, k) in ghost.keyset() {
                assert_ne!(k, gk, "{u} retains the live group key");
            }
            let mut replay = ghost.clone();
            let mut installed = 0;
            for bytes in &self.traffic {
                if let Ok(s) = replay.process_packet(bytes) {
                    installed += s.keys_installed;
                }
            }
            // A ghost may decrypt traffic from *before* it left (it was
            // entitled to those keys). What it must never obtain is the
            // current group key.
            let _ = installed;
            if let Some((_, k)) = replay.group_key() {
                assert_ne!(k, gk, "{u} recovered the live group key by replay");
            }
        }
    }
}

fn churn(strategy: Strategy, ops: &[(u8, u64)]) {
    let mut w = World::new(strategy, 1234);
    for i in 0..6u64 {
        w.join(UserId(1_000 + i));
    }
    for &(kind, uid) in ops {
        let u = UserId(uid);
        if kind == 0 {
            if !w.server.is_member(u) {
                w.join(u);
            }
        } else if w.server.is_member(u) && w.server.group_size() > 1 {
            w.leave(u);
        }
        w.assert_completeness();
    }
    w.assert_forward_secrecy();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn user_oriented_secrecy(ops in proptest::collection::vec((0u8..2, 0u64..24), 1..40)) {
        churn(Strategy::UserOriented, &ops);
    }

    #[test]
    fn key_oriented_secrecy(ops in proptest::collection::vec((0u8..2, 0u64..24), 1..40)) {
        churn(Strategy::KeyOriented, &ops);
    }

    #[test]
    fn group_oriented_secrecy(ops in proptest::collection::vec((0u8..2, 0u64..24), 1..40)) {
        churn(Strategy::GroupOriented, &ops);
    }

    /// Client-derived rekeying: joins/refreshes publish derivation codes
    /// instead of shipping keys, yet departed members still cannot reach
    /// the live group key (leaves ship fresh keys their stale keyset
    /// cannot decrypt, and later codes derive from those).
    #[test]
    fn derived_secrecy(ops in proptest::collection::vec((0u8..2, 0u64..24), 1..40)) {
        churn(Strategy::Derived, &ops);
    }
}

/// Batched-rekeying analogue of [`World`]: requests queue on the server
/// and take effect only when an interval is flushed; clients consume
/// consolidated [`BatchRekeyPacket`]s.
struct BatchWorld {
    server: GroupKeyServer,
    clients: BTreeMap<UserId, Client>,
    traffic: Vec<Vec<u8>>,
    ghosts: Vec<(UserId, Client)>,
    now_ms: u64,
}

impl BatchWorld {
    fn new(strategy: Strategy, seed: u64) -> BatchWorld {
        let config = ServerConfig {
            strategy,
            auth: AuthPolicy::None,
            seed,
            rekey: RekeyPolicy::Batched { interval_ms: 1_000, max_pending: usize::MAX },
            ..ServerConfig::default()
        };
        BatchWorld {
            server: GroupKeyServer::new(config, AccessControl::AllowAll),
            clients: BTreeMap::new(),
            traffic: Vec::new(),
            ghosts: Vec::new(),
            now_ms: 0,
        }
    }

    /// Flush the pending interval: evict the departed, admit the joiners,
    /// deliver the consolidated packets to every current member.
    fn flush(&mut self) {
        self.now_ms += 1_000;
        let Some(batch) = self.server.flush(self.now_ms).unwrap() else { return };
        for u in &batch.departed {
            let ghost = self.clients.remove(u).expect("departed user had a client");
            self.ghosts.push((*u, ghost));
        }
        for g in &batch.grants {
            let mut c = Client::new(g.user, KeyCipher::des_cbc(), VerifyPolicy::Opportunistic);
            c.install_grant(g.individual_key.clone(), g.leaf_label, &g.path_labels);
            self.clients.insert(g.user, c);
        }
        for bytes in &batch.encoded {
            self.traffic.push(bytes.clone());
            for c in self.clients.values_mut() {
                c.process_packet(bytes).unwrap();
            }
        }
    }

    fn assert_completeness(&self) {
        let (gk_ref, gk) = self.server.tree().group_key();
        for (u, c) in &self.clients {
            let (r, k) = c.group_key().unwrap_or_else(|| panic!("{u} lost the group key"));
            assert_eq!(r, gk_ref, "{u} stale ref");
            assert_eq!(k, gk, "{u} stale key");
        }
    }

    /// Forward secrecy across intervals: no ghost holds the current group
    /// key, and replaying the full batch-packet wiretap never yields it.
    fn assert_forward_secrecy(&self) {
        let (_, gk) = self.server.tree().group_key();
        for (u, ghost) in &self.ghosts {
            for (_, k) in ghost.keyset() {
                assert_ne!(k, gk, "{u} retains the live group key");
            }
            let mut replay = ghost.clone();
            for bytes in &self.traffic {
                let _ = replay.process_packet(bytes);
            }
            if let Some((_, k)) = replay.group_key() {
                assert_ne!(k, gk, "{u} recovered the live group key by replay");
            }
        }
    }
}

/// Random churn, flushed in intervals of a few requests each.
fn batched_churn(strategy: Strategy, ops: &[(u8, u64)]) {
    let mut w = BatchWorld::new(strategy, 4321);
    for i in 0..6u64 {
        w.server.enqueue_join(UserId(1_000 + i)).unwrap();
    }
    w.flush();
    // Mirror the scheduler's collapse rules so every enqueue is valid.
    let mut members: BTreeSet<u64> = (1_000..1_006).collect();
    let mut pending_join: BTreeSet<u64> = BTreeSet::new();
    let mut pending_leave: BTreeSet<u64> = BTreeSet::new();
    for (i, &(kind, uid)) in ops.iter().enumerate() {
        let u = UserId(uid);
        if kind == 0 {
            if !members.contains(&uid) && !pending_join.contains(&uid) {
                w.server.enqueue_join(u).unwrap();
                pending_join.insert(uid);
            }
        } else {
            let future_size = members.len() + pending_join.len() - pending_leave.len();
            if pending_join.contains(&uid) {
                // Join and leave collapse to a no-op inside one interval.
                if future_size > 1 {
                    w.server.enqueue_leave(u).unwrap();
                    pending_join.remove(&uid);
                }
            } else if members.contains(&uid) && !pending_leave.contains(&uid) && future_size > 1 {
                w.server.enqueue_leave(u).unwrap();
                pending_leave.insert(uid);
            }
        }
        // Flush every few requests, and once more at the end.
        if i % 4 == 3 || i + 1 == ops.len() {
            w.flush();
            for j in &pending_join {
                members.insert(*j);
            }
            for l in &pending_leave {
                members.remove(l);
            }
            pending_join.clear();
            pending_leave.clear();
            w.assert_completeness();
        }
    }
    w.assert_forward_secrecy();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batched_user_oriented_secrecy(ops in proptest::collection::vec((0u8..2, 0u64..24), 1..40)) {
        batched_churn(Strategy::UserOriented, &ops);
    }

    #[test]
    fn batched_key_oriented_secrecy(ops in proptest::collection::vec((0u8..2, 0u64..24), 1..40)) {
        batched_churn(Strategy::KeyOriented, &ops);
    }

    #[test]
    fn batched_group_oriented_secrecy(ops in proptest::collection::vec((0u8..2, 0u64..24), 1..40)) {
        batched_churn(Strategy::GroupOriented, &ops);
    }

    #[test]
    fn batched_derived_secrecy(ops in proptest::collection::vec((0u8..2, 0u64..24), 1..40)) {
        batched_churn(Strategy::Derived, &ops);
    }
}

#[test]
fn batched_interval_departures_learn_no_new_key() {
    // All users leaving in one interval: none of the interval's marked
    // (replaced) keys is recoverable by any of them, even pooling the
    // interval's entire traffic.
    for strategy in Strategy::EVERY {
        let mut w = BatchWorld::new(strategy, 77);
        for i in 0..16u64 {
            w.server.enqueue_join(UserId(i)).unwrap();
        }
        w.flush();
        for u in [1u64, 6, 11] {
            w.server.enqueue_leave(UserId(u)).unwrap();
        }
        for u in [100u64, 101] {
            w.server.enqueue_join(UserId(u)).unwrap();
        }
        let pre_traffic = w.traffic.len();
        w.flush();
        w.assert_completeness();
        let (_, gk) = w.server.tree().group_key();
        for (u, ghost) in &w.ghosts {
            let mut replay = ghost.clone();
            // Replay only the interval that evicted them (their stale
            // interval counter accepts it), several times for a fixed point.
            for _ in 0..3 {
                for bytes in &w.traffic[pre_traffic..] {
                    let _ = replay.process_packet(bytes);
                }
            }
            for (_, k) in replay.keyset() {
                assert_ne!(k, gk, "{strategy:?}: departed {u} recovered the new group key");
            }
        }
    }
}

#[test]
fn batched_backward_secrecy_joiner_cannot_read_history() {
    for strategy in Strategy::EVERY {
        let mut w = BatchWorld::new(strategy, 55);
        for i in 0..12u64 {
            w.server.enqueue_join(UserId(i)).unwrap();
        }
        w.flush();
        let (_, old_gk) = w.server.tree().group_key();
        let secret = KeyCipher::des_cbc().encrypt(&old_gk, &[0u8; 8], b"before the interval");
        // A mixed interval admits a newcomer.
        w.server.enqueue_leave(UserId(4)).unwrap();
        w.server.enqueue_join(UserId(200)).unwrap();
        w.flush();
        w.assert_completeness();
        let mut newcomer = w.clients.get(&UserId(200)).unwrap().clone();
        for bytes in w.traffic.clone() {
            let _ = newcomer.process_packet(&bytes);
        }
        for (_, k) in newcomer.keyset() {
            assert_ne!(k, old_gk, "{strategy:?}: joiner holds the previous group key");
            if let Ok(pt) = KeyCipher::des_cbc().decrypt(&k, &[0u8; 8], &secret) {
                assert_ne!(pt, b"before the interval", "{strategy:?}: backward secrecy broken");
            }
        }
    }
}

#[test]
fn backward_secrecy_newcomer_cannot_read_history() {
    for strategy in Strategy::EVERY {
        let mut w = World::new(strategy, 99);
        for i in 0..9u64 {
            w.join(UserId(i));
        }
        // Record an epoch's group key and some churn traffic.
        let (_, old_gk) = w.server.tree().group_key();
        let secret = KeyCipher::des_cbc().encrypt(&old_gk, &[0u8; 8], b"before the join");
        w.leave(UserId(2));
        w.join(UserId(50));
        // The newcomer replays the wiretap: must not recover old_gk nor
        // decrypt the old epoch's traffic.
        let newcomer = w.clients.get(&UserId(50)).unwrap().clone();
        for (_, k) in newcomer.keyset() {
            assert_ne!(k, old_gk, "{strategy:?}: newcomer holds an old group key");
            if let Ok(pt) = KeyCipher::des_cbc().decrypt(&k, &[0u8; 8], &secret) {
                assert_ne!(pt, b"before the join", "{strategy:?}: backward secrecy broken");
            }
        }
        let mut replayer = newcomer;
        for bytes in w.traffic.clone() {
            let _ = replayer.process_packet(&bytes);
        }
        for (_, k) in replayer.keyset() {
            if let Ok(pt) = KeyCipher::des_cbc().decrypt(&k, &[0u8; 8], &secret) {
                assert_ne!(pt, b"before the join", "{strategy:?}: replay broke backward secrecy");
            }
        }
    }
}

#[test]
fn eviction_is_immediate() {
    // The very first rekey after a leave already locks the leaver out.
    let mut w = World::new(Strategy::GroupOriented, 7);
    for i in 0..16u64 {
        w.join(UserId(i));
    }
    let victim = UserId(5);
    let ghost_keys: Vec<_> =
        w.server.tree().keyset(victim).unwrap().into_iter().map(|(_, k)| k).collect();
    w.leave(victim);
    let (_, gk) = w.server.tree().group_key();
    for k in ghost_keys {
        assert_ne!(k, gk);
    }
    w.assert_completeness();
}

#[test]
fn two_departures_cannot_collude() {
    // Two leavers pooling their stale keysets still cannot reach the
    // current group key (their shared ancestors were rekeyed after each
    // departure).
    let mut w = World::new(Strategy::KeyOriented, 11);
    for i in 0..12u64 {
        w.join(UserId(i));
    }
    w.leave(UserId(3));
    w.leave(UserId(4));
    let (_, gk) = w.server.tree().group_key();
    let mut pooled: Vec<_> = Vec::new();
    for (_, ghost) in &w.ghosts {
        pooled.extend(ghost.keyset().into_iter().map(|(_, k)| k));
    }
    for k in &pooled {
        assert_ne!(*k, gk);
    }
    // Pooled replay of all traffic (fixed point over both keysets) — model
    // by running both ghosts' clients over traffic repeatedly.
    for _ in 0..3 {
        for (_, ghost) in w.ghosts.iter_mut() {
            for bytes in &w.traffic {
                let _ = ghost.process_rekey(bytes);
            }
        }
    }
    for (_, ghost) in &w.ghosts {
        if let Some((_, k)) = ghost.group_key() {
            assert_ne!(k, gk, "collusion recovered the group key");
        }
    }
}

/// The ghost attack on client-derived rekeying: a departed member keeps
/// every key it ever held *and* the full wiretap — every derivation code
/// and every (from → new) link the server ever published. Closing that
/// keyset under the published derivation relation (and, more generously,
/// applying every code to every held key for every published target ref)
/// must never produce a key the server currently holds. This is the
/// forward-secrecy argument for why leaves ship instead of derive: the
/// closure below WOULD reach the post-leave keys if they were derived
/// from keys on the evicted path.
#[test]
fn departed_member_derivation_closure_reaches_no_live_key() {
    use keygraphs::core::derive::derive_key;
    use keygraphs::core::ids::KeyRef;
    use keygraphs::wire::DerivedRekeyPacket;

    let mut w = World::new(Strategy::Derived, 31);
    for i in 0..16u64 {
        w.join(UserId(i));
    }
    let victim = UserId(5);
    let held: Vec<(KeyRef, _)> = w.server.tree().keyset(victim).unwrap();
    w.leave(victim);
    // Post-leave churn: joins and a refresh, each publishing a code.
    for i in 100..104u64 {
        w.join(UserId(i));
    }
    let op = w.server.refresh_group_key().unwrap();
    w.deliver(&op.encoded);

    // The wiretap, as the ghost sees it: every (code, links) publication.
    let published: Vec<(Vec<u8>, Vec<keygraphs::core::derive::DerivedLink>)> = w
        .traffic
        .iter()
        .filter(|b| DerivedRekeyPacket::sniff(b))
        .map(|b| {
            let (p, _) = DerivedRekeyPacket::decode(b).expect("wiretapped packet decodes");
            (p.code, p.changed)
        })
        .filter(|(code, _)| !code.is_empty())
        .collect();
    assert!(published.len() >= 5, "the churn published codes to attack with");
    let targets: BTreeSet<KeyRef> =
        published.iter().flat_map(|(_, links)| links.iter().map(|l| l.new_ref)).collect();

    // Close the ghost's keyset under derivation: every held key × every
    // published code × every published target ref, to a (bounded) fixed
    // point. Two rounds cover every chain the wiretap could express.
    let mut arsenal: BTreeSet<Vec<u8>> = held.iter().map(|(_, k)| k.material().to_vec()).collect();
    for _ in 0..2 {
        let snapshot: Vec<Vec<u8>> = arsenal.iter().cloned().collect();
        for material in &snapshot {
            let old = keygraphs::crypto::SymmetricKey::from_bytes(material);
            for (code, _) in &published {
                for r in &targets {
                    let d = derive_key(&old, code, r.label, r.version, material.len());
                    arsenal.insert(d.material().to_vec());
                }
            }
        }
    }

    // Every key the server currently holds, over all members' paths.
    let live: BTreeSet<Vec<u8>> = w
        .clients
        .keys()
        .flat_map(|&u| w.server.tree().keyset(u).expect("member keyset"))
        .map(|(_, k)| k.material().to_vec())
        .collect();
    let (_, gk) = w.server.tree().group_key();
    assert!(live.contains(gk.material()), "sanity: the live set covers the group key");
    for k in &live {
        assert!(!arsenal.contains(k), "ghost derived a live key");
    }
}
