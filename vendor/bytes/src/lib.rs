//! Offline stand-in for the crates.io `bytes` crate.
//!
//! Implements the slice of the `bytes` 1.x API the workspace uses:
//!
//! * [`Bytes`] — an immutable, cheaply clonable byte buffer
//!   (`Arc<[u8]>`-backed here; the real crate refcounts too).
//! * [`Buf`] for `&[u8]` — big-endian scalar reads with cursor advance.
//! * [`BufMut`] for `Vec<u8>` — big-endian scalar writes.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wrap a static slice (no copy in the real crate; one copy here,
    /// which is fine for test-scale payloads).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.data[..] == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.data[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

/// Read cursor over a byte source; all scalars are big-endian.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Advance the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// View of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write sink for bytes; all scalars are big-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip_is_big_endian() {
        let mut out = Vec::new();
        out.put_u8(0xAB);
        out.put_u32(0x0102_0304);
        out.put_u64(0x0506_0708_090A_0B0C);
        assert_eq!(out[1..5], [1, 2, 3, 4]);
        let mut buf = out.as_slice();
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u32(), 0x0102_0304);
        assert_eq!(buf.get_u64(), 0x0506_0708_090A_0B0C);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow_and_equal() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, [1u8, 2, 3]);
        assert!(Bytes::from_static(b"xy") == *b"xy");
    }

    #[test]
    fn copy_to_slice_advances() {
        let data = [9u8, 8, 7, 6];
        let mut buf = &data[..];
        let mut dst = [0u8; 2];
        buf.copy_to_slice(&mut dst);
        assert_eq!(dst, [9, 8]);
        assert_eq!(buf, &[7, 6]);
    }
}
