//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment has no registry access, so this crate vendors the
//! small slice of the `rand` 0.8 API the workspace actually uses:
//!
//! * [`RngCore`] / [`Error`] — the object-safe generator core.
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`.
//! * [`Rng`] with `gen`, `gen_bool` and `gen_range` over integer ranges.
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator.
//! * [`rngs::OsRng`] — best-effort entropy from the OS without any
//!   external dependency (hasher + clock mixing).
//!
//! Statistical quality matches what the experiments need (workload
//! shuffling, loss models, RSA candidate generation); it is NOT a
//! cryptographic RNG — the repo's own `HmacDrbg` fills that role.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type for fallible generator operations (never produced by the
/// in-tree generators, but part of the `rand` 0.8 signature).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator (object safe).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Instantiate from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Instantiate from a `u64` (the form the workspace uses everywhere).
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion of the u64 into the full seed, as rand does.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be uniformly sampled from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Sample uniformly from `[low, high)` (`high` exclusive).
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Sample uniformly from `[low, high]` (`high` inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty sample range");
                let span = (high as $wide).wrapping_sub(low as $wide);
                // Widening-multiply rejection-free mapping (Lemire); the
                // slight modulo bias is irrelevant for simulation use.
                let x = rng.next_u64() as u128;
                let m = (span as u128).wrapping_mul(x) >> 64;
                low.wrapping_add(m as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty sample range");
                if low == <$t>::MIN && high == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                Self::sample_exclusive(rng, low, high.wrapping_add(1))
            }
        }
    )*};
}

impl_sample_uniform!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                     i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64);

/// A range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a value of this type.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::draw(self) < p
    }

    /// Uniform sample from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Bundled generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    use std::time::{SystemTime, UNIX_EPOCH};

    /// Deterministic generator: xoshiro256** (same family `rand` 0.8 uses
    /// behind `StdRng`'s API, though the streams differ — nothing in this
    /// workspace depends on crates.io `StdRng` byte streams).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 1, 2];
            }
            StdRng { s }
        }
    }

    /// Best-effort OS-entropy generator with no external dependencies:
    /// seeds a [`StdRng`] from `RandomState` (per-process entropy), the
    /// wall clock, and a per-instance counter. Not cryptographic — the
    /// workspace's deterministic `HmacDrbg` handles key material.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct OsRng;

    impl RngCore for OsRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut h = RandomState::new().build_hasher();
            let now =
                SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos()).unwrap_or(0);
            h.write_u128(now);
            h.finish()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut seed = StdRng::seed_from_u64(self.next_u64());
            seed.fill_bytes(dest);
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{OsRng, StdRng};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(100..=110);
            assert!((100..=110).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn os_rng_produces_distinct_values() {
        let mut rng = OsRng;
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }
}
