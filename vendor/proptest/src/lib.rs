//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The registry is unreachable in this build environment, so this crate
//! implements the subset of proptest's surface the workspace's tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), range / tuple /
//! `collection::vec` / `array::uniform8` strategies, plain-typed parameters
//! via [`arbitrary::Arbitrary`], and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **No shrinking.** A failing case panics with the standard assert
//!   message; the run is fully deterministic (seeded from the test name),
//!   so a failure reproduces exactly on re-run.
//! * **`prop_assert*` panic** instead of returning `Err`, which is
//!   indistinguishable at the test-harness level.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Per-test configuration. Only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the offline suite
            // quick while still exercising the properties broadly.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a label (the test function name),
        /// so distinct tests see distinct but reproducible streams.
        pub fn deterministic(label: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in label.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((bound as u128 * self.next_u64() as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    if lo as u64 == 0 && hi as u64 == <$t>::MAX as u64 {
                        return rng.next_u64() as $t;
                    }
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    (self.start..=<$t>::MAX).generate(rng)
                }
            }
        )*};
    }

    impl_range_strategies!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Types usable as plain-typed `proptest!` parameters (`x: u64`).
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over all values of an [`Arbitrary`] type.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> crate::strategy::Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy generating any value of `T` (proptest's `any::<T>()`).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy { _marker: std::marker::PhantomData }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy for vectors of `element` values (see [`vec`]).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy and size (exact or range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; 8]` arrays (see [`uniform8`]).
    #[derive(Debug, Clone)]
    pub struct ArrayStrategy8<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for ArrayStrategy8<S> {
        type Value = [S::Value; 8];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; 8] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    /// Fixed-size array of eight independently drawn elements.
    pub fn uniform8<S: Strategy>(element: S) -> ArrayStrategy8<S> {
        ArrayStrategy8 { element }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define deterministic randomized tests.
///
/// Each `fn` inside runs `cases` times (from `#![proptest_config(..)]` or
/// the default config) with fresh parameter values per case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expand one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident ($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $crate::__proptest_bind!(__rng; $($params)*);
                $body
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: bind one parameter list entry.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
}

/// Property assertion (panics on failure; no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let x = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&x));
            let y = (10usize..=12).generate(&mut rng);
            assert!((10..=12).contains(&y));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = TestRng::deterministic("vecs");
        for _ in 0..200 {
            let v = crate::collection::vec(0u8.., 1..48).generate(&mut rng);
            assert!((1..48).contains(&v.len()));
            let exact = crate::collection::vec(0u8.., 24usize).generate(&mut rng);
            assert_eq!(exact.len(), 24);
        }
    }

    #[test]
    fn tuples_and_arrays_compose() {
        let mut rng = TestRng::deterministic("composite");
        let pairs = crate::collection::vec((0u8..2, 0u64..32), 1..100).generate(&mut rng);
        assert!(pairs.iter().all(|&(a, b)| a < 2 && b < 32));
        let key: [u8; 8] = crate::array::uniform8(0u8..).generate(&mut rng);
        assert_eq!(key.len(), 8);
    }

    #[test]
    fn deterministic_per_label() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        let mut c = TestRng::deterministic("different");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: mixed `in` and plain-typed params, trailing comma.
        #[test]
        fn macro_binds_all_param_forms(
            xs in crate::collection::vec(0u8.., 0..16),
            n in 1usize..5,
            raw: u64,
        ) {
            prop_assert!(xs.len() < 16);
            prop_assert!((1..5).contains(&n));
            prop_assert_eq!(raw, raw);
            prop_assert_ne!(n, 0);
        }

        #[test]
        fn macro_handles_plain_only(a: u64, b: u64) {
            crate::prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }
    }
}
