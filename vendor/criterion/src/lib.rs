//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — as a
//! plain wall-clock harness: calibrate an iteration count for a short
//! measurement window, time it, and print mean ns/iter. No statistics,
//! plots, or saved baselines; good enough to compare configurations by eye
//! in an environment with no registry access.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per benchmark measurement.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    elapsed_ns: f64,
}

impl Bencher {
    /// Measure `routine`: calibrate an iteration count that fills the
    /// measurement window, then time that many iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: double the iteration count until the batch takes
        // at least ~1/10 of the measurement window.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MEASURE_WINDOW / 10 || iters >= 1 << 30 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters *= 2;
        };
        // Measurement: one batch sized to the full window.
        let target = (MEASURE_WINDOW.as_nanos() as f64 / per_iter.max(1.0)) as u64;
        let iters = target.clamp(1, 1 << 32);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { elapsed_ns: 0.0 };
    f(&mut b);
    if b.elapsed_ns >= 1e6 {
        println!("{label:<50} {:>12.3} ms/iter", b.elapsed_ns / 1e6);
    } else if b.elapsed_ns >= 1e3 {
        println!("{label:<50} {:>12.3} us/iter", b.elapsed_ns / 1e3);
    } else {
        println!("{label:<50} {:>12.1} ns/iter", b.elapsed_ns);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in takes one sample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the window is fixed.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, &mut f);
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// End the group (prints nothing extra in the stand-in).
    pub fn finish(self) {}
}

/// Benchmark manager; one per bench binary.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; CLI flags are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmark `f` under a bare name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }
}

/// Define a benchmark group function calling each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { elapsed_ns: 0.0 };
        b.iter(|| black_box(41u64) + 1);
        assert!(b.elapsed_ns > 0.0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("enc-only", "user").id, "enc-only/user");
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
        assert_eq!(BenchmarkId::from("greedy").id, "greedy");
    }

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(0)));
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
