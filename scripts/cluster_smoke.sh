#!/usr/bin/env bash
# Multi-process cluster smoke test: a router and two shard nodes as real
# OS processes on UDP loopback, driven by kgc-admin. Asserts the scripted
# session succeeds and the admin shutdown reports wal_tail=0 (every
# shard's final snapshot landed; a restart would replay nothing).
#
#   scripts/cluster_smoke.sh [target-dir]
#
# Expects kgc-router / kgc-node / kgc-admin already built (release).
set -euo pipefail

bindir="${1:-target/release}"
for bin in kgc-router kgc-node kgc-admin; do
  [[ -x "$bindir/$bin" ]] || { echo "missing $bindir/$bin (cargo build --release -p kg-cluster)"; exit 2; }
done

workdir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

router_addr="127.0.0.1:7600"
node0_addr="127.0.0.1:7610"
node1_addr="127.0.0.1:7611"

"$bindir/kgc-router" --bind "$router_addr" --shards 2 \
  --peer "0=$node0_addr" --peer "1=$node1_addr" --span 1=2 \
  >"$workdir/router.log" 2>&1 &
pids+=($!)

for s in 0 1; do
  addr_var="node${s}_addr"
  "$bindir/kgc-node" --shard "$s" --bind "${!addr_var}" --router "$router_addr" \
    --dir "$workdir/shard-$s" --batch-ms 50 \
    >"$workdir/node-$s.log" 2>&1 &
  pids+=($!)
done

# Give the processes a moment to bind before the session starts.
sleep 1

"$bindir/kgc-admin" --router "$router_addr" --timeout-ms 30000 \
  session --group 1 --users 8
"$bindir/kgc-admin" --router "$router_addr" --timeout-ms 30000 \
  stats --expect 2

summary="$("$bindir/kgc-admin" --router "$router_addr" --timeout-ms 30000 shutdown)"
echo "$summary"
grep -q "wal_tail=0" <<<"$summary" || {
  echo "FAIL: shutdown summary did not report wal_tail=0"
  cat "$workdir"/router.log "$workdir"/node-*.log
  exit 1
}

# The nodes and router exit on their own after a clean shutdown.
for pid in "${pids[@]}"; do
  for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || continue 2
    sleep 0.1
  done
  echo "FAIL: pid $pid still running after shutdown"
  exit 1
done
pids=()

echo "cluster smoke: OK"
