#!/usr/bin/env bash
# Multi-process cluster smoke test: a router and two shard nodes as real
# OS processes on UDP loopback, driven by kgc-admin. Asserts the scripted
# session succeeds, the telemetry plane merges node pushes into a
# non-empty cluster view, a cross-process leave trace reassembles fully
# stitched, and the admin shutdown reports wal_tail=0 (every shard's
# final snapshot landed; a restart would replay nothing).
#
#   scripts/cluster_smoke.sh [target-dir]
#
# Expects kgc-router / kgc-node / kgc-admin already built (release).
set -euo pipefail

bindir="${1:-target/release}"
for bin in kgc-router kgc-node kgc-admin; do
  [[ -x "$bindir/$bin" ]] || { echo "missing $bindir/$bin (cargo build --release -p kg-cluster)"; exit 2; }
done

workdir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

router_addr="127.0.0.1:7600"
node0_addr="127.0.0.1:7610"
node1_addr="127.0.0.1:7611"

"$bindir/kgc-router" --bind "$router_addr" --shards 2 \
  --peer "0=$node0_addr" --peer "1=$node1_addr" --span 1=2 \
  --flight-recorder "$workdir/flight.json" \
  >"$workdir/router.log" 2>&1 &
pids+=($!)

for s in 0 1; do
  addr_var="node${s}_addr"
  "$bindir/kgc-node" --shard "$s" --bind "${!addr_var}" --router "$router_addr" \
    --dir "$workdir/shard-$s" --batch-ms 50 --telemetry-ms 100 \
    >"$workdir/node-$s.log" 2>&1 &
  pids+=($!)
done

# Give the processes a moment to bind before the session starts.
sleep 1

"$bindir/kgc-admin" --router "$router_addr" --timeout-ms 30000 \
  session --group 1 --users 8
"$bindir/kgc-admin" --router "$router_addr" --timeout-ms 30000 \
  stats --expect 2

# Mid-run telemetry scrape: the merged cluster view must contain both
# router-side request counters and node-pushed snapshot counters. Nodes
# push every 100ms, so retry briefly until at least one push from every
# shard has merged.
metrics=""
for _ in $(seq 1 50); do
  metrics="$("$bindir/kgc-admin" --router "$router_addr" --timeout-ms 5000 \
    metrics --format prom)"
  if grep -q "kg_requests_total" <<<"$metrics" \
    && grep -Eq 'kg_cluster_telemetry_snapshots_total\{shard="0"\} [1-9]' <<<"$metrics" \
    && grep -Eq 'kg_cluster_telemetry_snapshots_total\{shard="1"\} [1-9]' <<<"$metrics"; then
    break
  fi
  metrics=""
  sleep 0.1
done
[[ -n "$metrics" ]] || {
  echo "FAIL: merged metrics view never contained router + node counters"
  cat "$workdir"/router.log "$workdir"/node-*.log
  exit 1
}
echo "metrics scrape: merged view OK ($(wc -l <<<"$metrics") lines)"

# Cross-process trace: the latest stitched trace must reassemble
# end-to-end — router ingress hop and shard-node handling spans linked
# by one trace_id. Only control requests are traced and the session
# ends with leaves, so the latest trace is the final leave. Under
# --batch-ms its request-path spans are the parse + WAL append (the
# rekey itself runs at the interval flush, outside the request trace).
# Node spans arrive with telemetry pushes, so retry until they land.
trace=""
for _ in $(seq 1 50); do
  trace="$("$bindir/kgc-admin" --router "$router_addr" --timeout-ms 5000 \
    trace --id last)"
  if grep -q "stitched=yes" <<<"$trace" \
    && grep -q "node.parse" <<<"$trace" \
    && grep -q "router.recv" <<<"$trace"; then
    break
  fi
  trace=""
  sleep 0.1
done
[[ -n "$trace" ]] || {
  echo "FAIL: no fully-stitched cross-process leave trace reassembled"
  "$bindir/kgc-admin" --router "$router_addr" --timeout-ms 5000 trace --id last || true
  cat "$workdir"/router.log "$workdir"/node-*.log
  exit 1
}
echo "trace reassembly: stitched leave trace OK"
echo "$trace"

summary="$("$bindir/kgc-admin" --router "$router_addr" --timeout-ms 30000 shutdown)"
echo "$summary"
grep -q "wal_tail=0" <<<"$summary" || {
  echo "FAIL: shutdown summary did not report wal_tail=0"
  cat "$workdir"/router.log "$workdir"/node-*.log
  exit 1
}

# The nodes and router exit on their own after a clean shutdown.
for pid in "${pids[@]}"; do
  for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || continue 2
    sleep 0.1
  done
  echo "FAIL: pid $pid still running after shutdown"
  exit 1
done
pids=()

# The router writes its flight-recorder dump on clean shutdown.
grep -q '"snapshots"' "$workdir/flight.json" || {
  echo "FAIL: flight recorder dump missing or empty"
  exit 1
}
echo "flight recorder: dump OK"

echo "cluster smoke: OK"
